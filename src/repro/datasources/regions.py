"""Synthetic geographical region sets (the shapefile surrogate).

The paper's link-discovery experiment (Section 4.2.4) runs against
8,599 Natura2000 + fishing regions around Europe, and Figure 4 shows
those regions clustered along coastal bands. This module generates a
region set with the same statistical character: many small protected
areas plus some large fishing zones, clustered around a configurable
set of "coastline" anchor bands rather than spread uniformly — which
is exactly what makes the cell-mask optimization effective (cells far
from regions get an empty mask and prune immediately).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..geo import BBox, Polygon

#: The default area of interest: a Mediterranean-like basin.
DEFAULT_BBOX = BBox(-6.0, 30.0, 30.0, 46.0)

REGION_KINDS = ("natura2000", "fishing_zone", "anchorage", "protected_area", "traffic_separation")
_KIND_WEIGHTS = (0.55, 0.20, 0.10, 0.10, 0.05)


@dataclass(frozen=True, slots=True)
class Region:
    """A named stationary area with polygon geometry."""

    region_id: str
    name: str
    kind: str
    polygon: Polygon

    @property
    def bbox(self) -> BBox:
        return self.polygon.bbox


def _random_blob(rng: random.Random, cx: float, cy: float, radius_deg: float, n_vertices: int) -> Polygon:
    """An irregular star-convex polygon around (cx, cy)."""
    pts = []
    for k in range(n_vertices):
        angle = 2.0 * math.pi * k / n_vertices
        r = radius_deg * rng.uniform(0.55, 1.0)
        pts.append((cx + r * math.cos(angle), cy + r * math.sin(angle)))
    return Polygon(pts)


def _random_strip(rng: random.Random, cx: float, cy: float, half_length_deg: float, n_vertices: int) -> Polygon:
    """A thin, elongated, jittered strip — the coastal-band region shape.

    Strips have a large bounding box but cover little of it, which is the
    geometry regime where the link-discovery cell masks pay off (most of a
    grid cell crossed by a strip is mask — free of actual coverage).
    """
    angle = rng.uniform(0.0, math.pi)
    dx, dy = math.cos(angle), math.sin(angle)
    width = half_length_deg * rng.uniform(0.04, 0.15)
    half = max(3, n_vertices // 2)
    upper, lower = [], []
    for k in range(half):
        f = -1.0 + 2.0 * k / (half - 1)
        px = cx + f * half_length_deg * dx
        py = cy + f * half_length_deg * dy
        bend = math.sin(f * math.pi) * half_length_deg * 0.15
        jitter = rng.uniform(0.6, 1.0) * width
        upper.append((px - dy * (jitter + bend), py + dx * (jitter + bend)))
        lower.append((px + dy * (jitter - bend), py - dx * (jitter - bend)))
    return Polygon(upper + lower[::-1])


def _coastal_anchors(rng: random.Random, bbox: BBox, n_bands: int) -> list[tuple[float, float, float]]:
    """Anchor bands (cx, cy, spread) along which regions cluster."""
    anchors = []
    for _ in range(n_bands):
        cx = rng.uniform(bbox.min_lon, bbox.max_lon)
        cy = rng.uniform(bbox.min_lat, bbox.max_lat)
        spread = rng.uniform(1.5, 3.0)
        anchors.append((cx, cy, spread))
    return anchors


def generate_regions(
    n: int = 8599,
    bbox: BBox = DEFAULT_BBOX,
    seed: int = 42,
    coastal_bands: int = 25,
    coastal_fraction: float = 0.85,
    vertex_range: tuple[int, int] = (16, 64),
) -> list[Region]:
    """Generate ``n`` regions, ``coastal_fraction`` of them clustered in bands.

    Region radii are log-normal: mostly sub-0.1-degree protected areas with a
    heavy tail of multi-degree fishing zones, matching the mixture visible in
    the paper's Figure 4 mask plot.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= coastal_fraction <= 1.0:
        raise ValueError("coastal_fraction must be in [0, 1]")
    rng = random.Random(seed)
    anchors = _coastal_anchors(rng, bbox, coastal_bands)
    regions: list[Region] = []
    margin = 0.5
    for i in range(n):
        kind = rng.choices(REGION_KINDS, weights=_KIND_WEIGHTS)[0]
        if rng.random() < coastal_fraction and anchors:
            cx0, cy0, spread = rng.choice(anchors)
            cx = rng.gauss(cx0, spread)
            cy = rng.gauss(cy0, spread * 0.6)
        else:
            cx = rng.uniform(bbox.min_lon, bbox.max_lon)
            cy = rng.uniform(bbox.min_lat, bbox.max_lat)
        cx = min(max(cx, bbox.min_lon + margin), bbox.max_lon - margin)
        cy = min(max(cy, bbox.min_lat + margin), bbox.max_lat - margin)
        base_radius = math.exp(rng.gauss(-3.4, 0.7))  # median ~0.033 deg
        if kind == "fishing_zone":
            base_radius *= 2.0
        radius = min(base_radius, 0.5)
        # Real Natura2000 boundaries are vertex-heavy, and about half are
        # elongated coastal strips whose bounding box dwarfs their area —
        # the refinement cost against them is what cell masks amortize.
        n_vertices = rng.randint(*vertex_range)
        if kind in ("natura2000", "traffic_separation") and rng.random() < 0.7:
            poly = _random_strip(rng, cx, cy, max(radius * 3.0, 0.05), n_vertices)
        else:
            poly = _random_blob(rng, cx, cy, radius, n_vertices)
        regions.append(Region(region_id=f"region-{i:05d}", name=f"{kind}-{i:05d}", kind=kind, polygon=poly))
    return regions


def regions_by_kind(regions: list[Region]) -> dict[str, list[Region]]:
    """Index a region list by kind."""
    out: dict[str, list[Region]] = {}
    for r in regions:
        out.setdefault(r.kind, []).append(r)
    return out
