"""Static entity registries: vessels, aircraft, and their metadata.

These stand in for the paper's archival "Vessel Registers" (166,683
distinct ships, Table 1) and aircraft context from the ECTL NM B2B
feeds. Registries are deterministic functions of a seed, so every
experiment can regenerate exactly the same fleet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Vessel type mix modelled on the AIS traffic composition in the paper's
#: maritime scenarios (fishing + surrounding traffic of cargo/tanker/ferry).
VESSEL_TYPES = ("fishing", "cargo", "tanker", "ferry", "tug", "pleasure")
_VESSEL_TYPE_WEIGHTS = (0.22, 0.38, 0.16, 0.10, 0.06, 0.08)

FLAGS = ("GR", "ES", "FR", "IT", "MT", "PA", "LR", "NL", "DE", "NO")

AIRCRAFT_TYPES = ("A320", "A321", "B737", "B738", "A330", "B777", "AT76", "E190")
_AIRCRAFT_WINGSPAN_CLASS = {
    "A320": "medium", "A321": "medium", "B737": "medium", "B738": "medium",
    "A330": "heavy", "B777": "heavy", "AT76": "light", "E190": "light",
}
_AIRCRAFT_CRUISE_SPEED_MS = {
    "A320": 230.0, "A321": 230.0, "B737": 225.0, "B738": 228.0,
    "A330": 245.0, "B777": 250.0, "AT76": 140.0, "E190": 210.0,
}
_AIRCRAFT_CRUISE_FL = {
    "A320": 360, "A321": 350, "B737": 350, "B738": 360,
    "A330": 390, "B777": 400, "AT76": 250, "E190": 340,
}


@dataclass(frozen=True, slots=True)
class VesselRecord:
    """One row of the vessel registry."""

    mmsi: str
    name: str
    vessel_type: str
    flag: str
    length_m: float
    max_speed_kn: float

    @property
    def is_fishing(self) -> bool:
        return self.vessel_type == "fishing"


@dataclass(frozen=True, slots=True)
class AircraftRecord:
    """One row of the aircraft registry."""

    icao24: str
    registration: str
    aircraft_type: str
    size_class: str
    cruise_speed_ms: float
    cruise_fl: int


def generate_vessel_registry(n: int, seed: int = 7) -> list[VesselRecord]:
    """Generate ``n`` vessel registry rows deterministically."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = random.Random(seed)
    rows: list[VesselRecord] = []
    for i in range(n):
        vtype = rng.choices(VESSEL_TYPES, weights=_VESSEL_TYPE_WEIGHTS)[0]
        length = {
            "fishing": rng.uniform(12, 45),
            "cargo": rng.uniform(80, 300),
            "tanker": rng.uniform(100, 330),
            "ferry": rng.uniform(60, 200),
            "tug": rng.uniform(20, 40),
            "pleasure": rng.uniform(8, 30),
        }[vtype]
        max_speed = {
            "fishing": rng.uniform(9, 14),
            "cargo": rng.uniform(12, 22),
            "tanker": rng.uniform(11, 17),
            "ferry": rng.uniform(16, 30),
            "tug": rng.uniform(10, 14),
            "pleasure": rng.uniform(10, 35),
        }[vtype]
        rows.append(
            VesselRecord(
                mmsi=f"{200_000_000 + seed * 1_000_000 + i}",
                name=f"{vtype.upper()}-{i:06d}",
                vessel_type=vtype,
                flag=rng.choice(FLAGS),
                length_m=round(length, 1),
                max_speed_kn=round(max_speed, 1),
            )
        )
    return rows


def generate_aircraft_registry(n: int, seed: int = 11) -> list[AircraftRecord]:
    """Generate ``n`` aircraft registry rows deterministically."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = random.Random(seed)
    rows: list[AircraftRecord] = []
    for i in range(n):
        atype = rng.choice(AIRCRAFT_TYPES)
        rows.append(
            AircraftRecord(
                icao24=f"{0x340000 + i:06x}",
                registration=f"EC-{chr(65 + (i // 676) % 26)}{chr(65 + (i // 26) % 26)}{chr(65 + i % 26)}",
                aircraft_type=atype,
                size_class=_AIRCRAFT_WINGSPAN_CLASS[atype],
                cruise_speed_ms=_AIRCRAFT_CRUISE_SPEED_MS[atype],
                cruise_fl=_AIRCRAFT_CRUISE_FL[atype],
            )
        )
    return rows
