"""Synthetic weather and sea-state sources.

Stands in for the paper's weather feeds (Table 1): gridded sea-state
forecasts (1 file / 3 hours) and station observations (1 obs/hour from
16 stations). The continuous field is a deterministic sum of travelling
sinusoids — spatially and temporally autocorrelated like a real
synoptic field, cheap to evaluate anywhere, and fully reproducible
from the seed. Enrichment (link discovery, predictors) only ever reads
scalar covariates at (lon, lat, t), which this provides.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from ..geo import BBox

from .regions import DEFAULT_BBOX


@dataclass(frozen=True, slots=True)
class WeatherSample:
    """The weather covariates at one point in space-time."""

    wind_u_ms: float   # eastward wind component
    wind_v_ms: float   # northward wind component
    visibility_km: float
    wave_height_m: float
    temperature_c: float

    @property
    def wind_speed_ms(self) -> float:
        return math.hypot(self.wind_u_ms, self.wind_v_ms)


class WeatherField:
    """A smooth, deterministic synthetic weather field.

    Each variable is a sum of ``n_modes`` travelling plane waves with
    random (seeded) wavevectors, phases and periods. Typical horizontal
    correlation length is a few degrees and temporal correlation a few
    hours — the scales that matter for trajectory enrichment.
    """

    def __init__(self, bbox: BBox = DEFAULT_BBOX, seed: int = 99, n_modes: int = 6, wind_scale_ms: float = 9.0):
        self.bbox = bbox
        self.seed = seed
        rng = random.Random(seed)
        self._modes: dict[str, list[tuple[float, float, float, float, float]]] = {}
        for var in ("wind_u", "wind_v", "visibility", "wave", "temp"):
            modes = []
            for _ in range(n_modes):
                kx = rng.uniform(0.2, 1.6)       # cycles per ~6 degrees
                ky = rng.uniform(0.2, 1.6)
                phase = rng.uniform(0.0, 2.0 * math.pi)
                period_s = rng.uniform(3.0, 18.0) * 3600.0
                amp = rng.uniform(0.4, 1.0)
                modes.append((kx, ky, phase, period_s, amp))
            self._modes[var] = modes
        self.wind_scale_ms = wind_scale_ms

    def _field(self, var: str, lon: float, lat: float, t: float) -> float:
        """Raw field value in [-1, 1]-ish units."""
        total, norm = 0.0, 0.0
        for kx, ky, phase, period_s, amp in self._modes[var]:
            total += amp * math.sin(kx * lon + ky * lat + 2.0 * math.pi * t / period_s + phase)
            norm += amp
        return total / norm if norm else 0.0

    def sample(self, lon: float, lat: float, t: float) -> WeatherSample:
        """Weather covariates at (lon, lat, t)."""
        u = self._field("wind_u", lon, lat, t) * self.wind_scale_ms
        v = self._field("wind_v", lon, lat, t) * self.wind_scale_ms
        vis = 20.0 + self._field("visibility", lon, lat, t) * 15.0   # 5..35 km
        wave = max(0.0, 1.8 + self._field("wave", lon, lat, t) * 1.8)
        temp = 16.0 + self._field("temp", lon, lat, t) * 10.0
        return WeatherSample(u, v, max(0.2, vis), wave, temp)

    def wind_at(self, lon: float, lat: float, t: float) -> tuple[float, float]:
        """Just the wind vector (u, v) in m/s."""
        s = self.sample(lon, lat, t)
        return s.wind_u_ms, s.wind_v_ms


@dataclass(frozen=True, slots=True)
class StationObservation:
    """A METAR-like station weather observation."""

    station_id: str
    t: float
    lon: float
    lat: float
    sample: WeatherSample


class WeatherStationNetwork:
    """A fixed set of observing stations reporting hourly (Table 1 row).

    The paper's weather-observation source is 71,516 observations from
    16 stations at one observation per hour.
    """

    def __init__(self, field: WeatherField, n_stations: int = 16, seed: int = 5):
        if n_stations < 1:
            raise ValueError("need at least one station")
        rng = random.Random(seed)
        self.field = field
        self.stations: list[tuple[str, float, float]] = [
            (
                f"station-{i:02d}",
                rng.uniform(field.bbox.min_lon, field.bbox.max_lon),
                rng.uniform(field.bbox.min_lat, field.bbox.max_lat),
            )
            for i in range(n_stations)
        ]

    def observations(self, t_start: float, t_end: float, period_s: float = 3600.0) -> Iterator[StationObservation]:
        """Yield one observation per station per ``period_s`` over [t_start, t_end)."""
        if period_s <= 0:
            raise ValueError("period must be positive")
        t = t_start
        while t < t_end:
            for sid, lon, lat in self.stations:
                yield StationObservation(sid, t, lon, lat, self.field.sample(lon, lat, t))
            t += period_s


@dataclass(frozen=True, slots=True)
class SeaStateForecast:
    """One gridded sea-state forecast 'file' (a batch of grid samples)."""

    issued_t: float
    grid_lon: list[float]
    grid_lat: list[float]
    wave_height_m: list[list[float]]

    def cell_count(self) -> int:
        return len(self.grid_lon) * len(self.grid_lat)


class SeaStateSource:
    """Gridded sea-state forecasts at one file per ``period_s`` (Table 1: 3 h)."""

    def __init__(self, field: WeatherField, resolution_deg: float = 0.5, period_s: float = 3.0 * 3600.0):
        if resolution_deg <= 0 or period_s <= 0:
            raise ValueError("resolution and period must be positive")
        self.field = field
        self.resolution_deg = resolution_deg
        self.period_s = period_s

    def forecast_at(self, t: float) -> SeaStateForecast:
        """Build the full-grid forecast issued at time ``t``."""
        box = self.field.bbox
        lons = _frange(box.min_lon, box.max_lon, self.resolution_deg)
        lats = _frange(box.min_lat, box.max_lat, self.resolution_deg)
        wave = [[self.field.sample(lon, lat, t).wave_height_m for lon in lons] for lat in lats]
        return SeaStateForecast(issued_t=t, grid_lon=lons, grid_lat=lats, wave_height_m=wave)

    def forecasts(self, t_start: float, t_end: float) -> Iterator[SeaStateForecast]:
        """All forecast files issued in [t_start, t_end)."""
        t = t_start
        while t < t_end:
            yield self.forecast_at(t)
            t += self.period_s


def _frange(start: float, stop: float, step: float) -> list[float]:
    out = []
    x = start
    while x <= stop + 1e-9:
        out.append(round(x, 9))
        x += step
    return out
