"""Synthetic data sources (S3): surrogates of the paper's Table-1 feeds.

Deterministic, seeded generators for AIS fleets, ADS-B flights with
flight plans, weather/sea-state fields, regions, ports and registries.
"""

from .aviation import (
    AIRPORTS,
    Airport,
    FlightConfig,
    FlightDatasetConfig,
    FlightPlan,
    FlightSimulator,
    SimulatedFlight,
    Waypoint,
    generate_flight_dataset,
    make_route,
)
from .maritime import AISConfig, AISSimulator, fishing_vessel_stream
from .ports import Port, generate_ports
from .regions import DEFAULT_BBOX, Region, generate_regions, regions_by_kind
from .registry import (
    AircraftRecord,
    VesselRecord,
    generate_aircraft_registry,
    generate_vessel_registry,
)
from .table1 import (
    MEASUREMENT_RUNNERS,
    SPEC_BY_ID,
    TABLE1_SPECS,
    SourceMeasurement,
    SourceSpec,
    measure_adsb,
    measure_ais,
    measure_contextual,
    measure_sea_state,
    measure_weather_obs,
)
from .weather import (
    SeaStateForecast,
    SeaStateSource,
    StationObservation,
    WeatherField,
    WeatherSample,
    WeatherStationNetwork,
)

__all__ = [
    "AIRPORTS",
    "AISConfig",
    "AISSimulator",
    "AircraftRecord",
    "Airport",
    "DEFAULT_BBOX",
    "FlightConfig",
    "FlightDatasetConfig",
    "FlightPlan",
    "FlightSimulator",
    "MEASUREMENT_RUNNERS",
    "Port",
    "Region",
    "SPEC_BY_ID",
    "SeaStateForecast",
    "SeaStateSource",
    "SimulatedFlight",
    "SourceMeasurement",
    "SourceSpec",
    "StationObservation",
    "TABLE1_SPECS",
    "VesselRecord",
    "Waypoint",
    "WeatherField",
    "WeatherSample",
    "WeatherStationNetwork",
    "fishing_vessel_stream",
    "generate_aircraft_registry",
    "generate_flight_dataset",
    "generate_ports",
    "generate_regions",
    "generate_vessel_registry",
    "make_route",
    "measure_adsb",
    "measure_ais",
    "measure_contextual",
    "measure_sea_state",
    "measure_weather_obs",
    "regions_by_kind",
]
