"""RDFizers: per-source instantiations of the generic RDF generation method.

One ``RDFGenerator`` pairs a data connector with a graph template. This
module provides the concrete record adapters and templates for every
datAcron source used downstream: trajectory synopses (semantic nodes),
raw AIS fixes, regions, ports, weather observations, and flight plans.
Throughput counters support the E3 experiment (Section 4.2.3 reports
~10,500 records/s and notes geometry-heavy sources run slower).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from ..datasources.ports import Port
from ..datasources.regions import Region
from ..datasources.weather import StationObservation
from ..geo import PositionFix, point_to_wkt, polygon_to_wkt
from ..geo.geometry import GeoPoint
from ..synopses import CriticalPoint

from .connectors import DataConnector, IterableConnector
from .templates import GraphTemplate, TriplePattern, var
from .terms import IRI, Literal, Triple
from .vocabulary import A, VOC, entity_iri, node_iri


@dataclass
class GeneratorStats:
    """Throughput accounting of one RDF generator run."""

    records: int = 0
    triples: int = 0
    wall_seconds: float = 0.0

    @property
    def records_per_second(self) -> float:
        return self.records / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def triples_per_record(self) -> float:
        return self.triples / self.records if self.records else 0.0


class RDFGenerator:
    """connector -> template -> triples, with throughput accounting."""

    def __init__(self, connector: DataConnector, template: GraphTemplate, name: str = "rdfizer"):
        self.connector = connector
        self.template = template
        self.name = name
        self.stats = GeneratorStats()

    def triples(self) -> Iterator[Triple]:
        """Generate all triples of the connected source."""
        start = time.perf_counter()
        for record in self.connector.records():
            produced = self.template.instantiate(record)
            self.stats.records += 1
            self.stats.triples += len(produced)
            yield from produced
        self.stats.wall_seconds += time.perf_counter() - start

    def fragments(self) -> Iterator[list[Triple]]:
        """Generate per-record triple fragments (what link discovery consumes)."""
        start = time.perf_counter()
        for record in self.connector.records():
            produced = self.template.instantiate(record)
            self.stats.records += 1
            self.stats.triples += len(produced)
            yield produced
        self.stats.wall_seconds += time.perf_counter() - start


# -- record adapters ----------------------------------------------------------


def fix_record(fix: PositionFix) -> dict[str, Any]:
    """A raw position fix as a connector record."""
    return {
        "entity_id": fix.entity_id,
        "t": fix.t,
        "lon": fix.lon,
        "lat": fix.lat,
        "alt": fix.alt,
        "speed": fix.speed,
        "heading": fix.heading,
        "vrate": fix.vrate,
        "source": fix.source,
    }


def critical_point_record(cp: CriticalPoint) -> dict[str, Any]:
    """A synopsis node as a connector record."""
    rec = fix_record(cp.fix)
    rec["kind"] = cp.kind
    return rec


def region_record(region: Region) -> dict[str, Any]:
    # The polygon is carried raw: WKT extraction happens inside the triple
    # generator (a generated variable), so the geometry-processing cost is
    # part of RDF generation — the paper notes geometry-heavy sources
    # transform markedly slower for exactly this reason.
    return {
        "region_id": region.region_id,
        "name": region.name,
        "kind": region.kind,
        "polygon": region.polygon,
    }


def port_record(port: Port) -> dict[str, Any]:
    return {
        "port_id": port.port_id,
        "name": port.name,
        "country": port.country,
        "wkt": point_to_wkt(port.location),
        "radius_m": port.radius_m,
    }


def weather_record(obs: StationObservation) -> dict[str, Any]:
    return {
        "station_id": obs.station_id,
        "t": obs.t,
        "wkt": point_to_wkt(GeoPoint(obs.lon, obs.lat)),
        "wind_u": obs.sample.wind_u_ms,
        "wind_v": obs.sample.wind_v_ms,
        "visibility": obs.sample.visibility_km,
        "wave": obs.sample.wave_height_m,
    }


# -- templates ----------------------------------------------------------------


def semantic_node_template() -> GraphTemplate:
    """Template for trajectory synopses: the core real-time RDFizer.

    Mints node/trajectory/entity IRIs as generated variables and embeds a
    WKT literal extracted during generation — both paper-described features
    of the variable-vector mechanism.
    """
    return GraphTemplate(
        generators=[
            ("node", lambda env: node_iri(env["entity_id"], env["t"])),
            ("trajectory", lambda env: entity_iri("trajectory", env["entity_id"])),
            ("mover", lambda env: entity_iri("object", env["entity_id"])),
            ("wkt", lambda env: Literal.wkt(point_to_wkt(GeoPoint(env["lon"], env["lat"], env.get("alt") or 0.0)))),
        ],
        patterns=[
            TriplePattern(var("node"), A, VOC.SemanticNode),
            TriplePattern(var("node"), VOC.eventType, var("kind")),
            TriplePattern(var("node"), VOC.timestamp, var("t")),
            TriplePattern(var("node"), VOC.asWKT, var("wkt")),
            TriplePattern(var("node"), VOC.speed, var("speed"), optional=True),
            TriplePattern(var("node"), VOC.heading, var("heading"), optional=True),
            TriplePattern(var("node"), VOC.altitude, var("alt"), optional=True),
            TriplePattern(var("trajectory"), A, VOC.Trajectory),
            TriplePattern(var("trajectory"), VOC.hasSemanticNode, var("node")),
            TriplePattern(var("trajectory"), VOC.ofMovingObject, var("mover")),
        ],
    )


def raw_position_template() -> GraphTemplate:
    """Template for raw (uncompressed) surveillance positions."""
    return GraphTemplate(
        generators=[
            ("node", lambda env: node_iri(env["entity_id"], env["t"])),
            ("mover", lambda env: entity_iri("object", env["entity_id"])),
            ("wkt", lambda env: Literal.wkt(point_to_wkt(GeoPoint(env["lon"], env["lat"], env.get("alt") or 0.0)))),
        ],
        patterns=[
            TriplePattern(var("node"), A, VOC.RawPosition),
            TriplePattern(var("node"), VOC.timestamp, var("t")),
            TriplePattern(var("node"), VOC.asWKT, var("wkt")),
            TriplePattern(var("node"), VOC.ofMovingObject, var("mover")),
            TriplePattern(var("node"), VOC.speed, var("speed"), optional=True),
        ],
    )


def region_template() -> GraphTemplate:
    """Template for geographical regions (geometry-heavy source)."""
    return GraphTemplate(
        generators=[
            ("region", lambda env: entity_iri("region", env["region_id"])),
            ("geom", lambda env: Literal.wkt(polygon_to_wkt(env["polygon"]))),
        ],
        patterns=[
            TriplePattern(var("region"), A, VOC.Region),
            TriplePattern(var("region"), VOC.label, var("name")),
            TriplePattern(var("region"), VOC.regionKind, var("kind")),
            TriplePattern(var("region"), VOC.asWKT, var("geom")),
        ],
    )


def port_template() -> GraphTemplate:
    return GraphTemplate(
        generators=[
            ("port", lambda env: entity_iri("port", env["port_id"])),
            ("geom", lambda env: Literal.wkt(env["wkt"])),
        ],
        patterns=[
            TriplePattern(var("port"), A, VOC.Port),
            TriplePattern(var("port"), VOC.label, var("name")),
            TriplePattern(var("port"), VOC.asWKT, var("geom")),
        ],
    )


def weather_template() -> GraphTemplate:
    return GraphTemplate(
        generators=[
            ("obs", lambda env: IRI(f"{entity_iri('weather', env['station_id']).value}/{env['t']:.0f}")),
            ("geom", lambda env: Literal.wkt(env["wkt"])),
        ],
        patterns=[
            TriplePattern(var("obs"), A, VOC.WeatherCondition),
            TriplePattern(var("obs"), VOC.timestamp, var("t")),
            TriplePattern(var("obs"), VOC.asWKT, var("geom")),
            TriplePattern(var("obs"), VOC.windU, var("wind_u")),
            TriplePattern(var("obs"), VOC.windV, var("wind_v")),
            TriplePattern(var("obs"), VOC.visibility, var("visibility")),
            TriplePattern(var("obs"), VOC.waveHeight, var("wave")),
        ],
    )


# -- ready-made generators ------------------------------------------------------


def synopses_rdfizer(points: Iterable[CriticalPoint]) -> RDFGenerator:
    """RDF generator over a critical-point stream."""
    connector = IterableConnector(critical_point_record(cp) for cp in points)
    return RDFGenerator(connector, semantic_node_template(), name="synopses")


def raw_fix_rdfizer(fixes: Iterable[PositionFix]) -> RDFGenerator:
    connector = IterableConnector(fix_record(f) for f in fixes)
    return RDFGenerator(connector, raw_position_template(), name="raw_positions")


def region_rdfizer(regions: Iterable[Region]) -> RDFGenerator:
    connector = IterableConnector(region_record(r) for r in regions)
    return RDFGenerator(connector, region_template(), name="regions")


def port_rdfizer(ports: Iterable[Port]) -> RDFGenerator:
    connector = IterableConnector(port_record(p) for p in ports)
    return RDFGenerator(connector, port_template(), name="ports")


def weather_rdfizer(observations: Iterable[StationObservation]) -> RDFGenerator:
    connector = IterableConnector(weather_record(o) for o in observations)
    return RDFGenerator(connector, weather_template(), name="weather")
