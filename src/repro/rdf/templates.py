"""Graph templates and variable vectors (Section 4.2.3).

The datAcron RDF generation method converts source records to triples
using two ingredients:

* a **variable vector** — the named fields exposed by the data
  connector, *plus* values generated during the conversion itself
  (minted IRIs, parsed WKT, unit conversions) that are not explicitly
  present in the source; and
* a **graph template** — a set of triple patterns whose subject or
  object may be a variable or a *function with variable arguments*.

The paper's point is that this needs no mapping-vocabulary knowledge
(unlike RML) and no underlying SPARQL engine (unlike SPARQL-Generate /
GeoTriples): anyone who can write simple SPARQL triple patterns can
write a template, and instantiation is embarrassingly parallel and
stream-friendly. That is exactly the shape implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence, Union

from .terms import IRI, Literal, Term, Triple, Variable

#: A template node: a concrete term, a variable, or a function of the bindings.
TemplateNode = Union[Term, Variable, Callable[[Mapping[str, Any]], Term]]


class TemplateError(ValueError):
    """Raised when a template cannot be instantiated for a record."""


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """One template row: subject / predicate / object template nodes."""

    s: TemplateNode
    p: TemplateNode
    o: TemplateNode
    optional: bool = False   # skip (instead of fail) when a variable is absent


class VariableVector:
    """The binding environment for one source record.

    Wraps the connector's record fields and lets *generated variables* —
    values computed during generation, such as minted IRIs — be added
    on top without mutating the source record.
    """

    def __init__(self, record: Mapping[str, Any], generated: Mapping[str, Any] | None = None):
        self._record = record
        self._generated = dict(generated or {})

    def __contains__(self, name: str) -> bool:
        return name in self._generated or name in self._record

    def __getitem__(self, name: str) -> Any:
        if name in self._generated:
            return self._generated[name]
        try:
            return self._record[name]
        except KeyError:
            raise TemplateError(f"unbound variable ?{name}") from None

    def get(self, name: str, default: Any = None) -> Any:
        try:
            return self[name]
        except TemplateError:
            return default

    def bind(self, name: str, value: Any) -> None:
        """Add a generated variable (overrides a source field of the same name)."""
        self._generated[name] = value

    def as_mapping(self) -> dict[str, Any]:
        merged = dict(self._record)
        merged.update(self._generated)
        return merged


def _coerce_term(value: Any) -> Term:
    """Lift a raw bound value into an RDF term."""
    if isinstance(value, (IRI, Literal)):
        return value
    if isinstance(value, (str, int, float, bool)):
        return Literal.of(value)
    raise TemplateError(f"cannot convert {type(value).__name__} to an RDF term")


@dataclass
class GraphTemplate:
    """A reusable set of triple patterns plus generated-variable rules."""

    patterns: Sequence[TriplePattern]
    #: name -> function(bindings) evaluated before instantiation, in order.
    generators: Sequence[tuple[str, Callable[[Mapping[str, Any]], Any]]] = field(default_factory=list)

    def instantiate(self, record: Mapping[str, Any]) -> list[Triple]:
        """Produce the triples of one record."""
        vector = VariableVector(record)
        for name, fn in self.generators:
            vector.bind(name, fn(vector.as_mapping()))
        env = vector.as_mapping()
        triples: list[Triple] = []
        for pattern in self.patterns:
            try:
                s = self._resolve(pattern.s, env, position="subject")
                p = self._resolve(pattern.p, env, position="predicate")
                o = self._resolve(pattern.o, env, position="object")
            except TemplateError:
                if pattern.optional:
                    continue
                raise
            if not isinstance(p, IRI):
                raise TemplateError(f"predicate resolved to a non-IRI: {p}")
            if isinstance(s, Literal):
                raise TemplateError(f"subject resolved to a literal: {s}")
            triples.append(Triple(s, p, o))
        return triples

    def instantiate_stream(self, records: Iterable[Mapping[str, Any]]) -> Iterator[Triple]:
        """Instantiate over a record stream (connectors plug in here)."""
        for record in records:
            yield from self.instantiate(record)

    @staticmethod
    def _resolve(node: TemplateNode, env: Mapping[str, Any], position: str) -> Term:
        if isinstance(node, Variable):
            if node.name not in env:
                raise TemplateError(f"unbound variable ?{node.name} in {position}")
            value = env[node.name]
            if value is None:
                raise TemplateError(f"null value for ?{node.name} in {position}")
            return _coerce_term(value)
        if callable(node) and not isinstance(node, (IRI, Literal)):
            return _coerce_term(node(env))
        return node  # already a concrete Term


def var(name: str) -> Variable:
    """Shorthand for a template/query variable."""
    return Variable(name)


def fn(template: Callable[[Mapping[str, Any]], Any]) -> Callable[[Mapping[str, Any]], Term]:
    """Wrap a plain function so its return value is coerced to a term."""

    def wrapper(env: Mapping[str, Any]) -> Term:
        return _coerce_term(template(env))

    return wrapper
