"""Semantic trajectory segmentation (Figure 3 of the paper).

The datAcron ontology represents a trajectory at several levels: the
``Trajectory`` is segmented into ``TrajectoryParts`` — "each revealing
specific behaviour, event, goal, activity" — which in turn enclose
``SemanticNodes`` (the critical points). This module derives that
structure from a synopsis: parts are cut at the natural behavioural
boundaries (stops and communication gaps), each part is labelled with
its behaviour (``voyage``, ``stopped``, ``gap``), and the whole
hierarchy is emitted as ontology triples linked with ``dtc:hasPart`` /
``dtc:encloses``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..synopses import CriticalPoint

from .terms import IRI, Literal, Triple
from .vocabulary import A, VOC, entity_iri, node_iri


@dataclass(frozen=True, slots=True)
class TrajectoryPart:
    """One behavioural segment of a trajectory."""

    part_id: str
    entity_id: str
    behaviour: str                      # voyage | stopped | gap
    points: tuple[CriticalPoint, ...]

    @property
    def t_start(self) -> float:
        return self.points[0].t

    @property
    def t_end(self) -> float:
        return self.points[-1].t

    def __len__(self) -> int:
        return len(self.points)


#: Critical-point kinds that open a new behavioural segment.
_BOUNDARY_OPENERS = {
    "stop_start": "stopped",
    "gap_start": "gap",
    "stop_end": "voyage",
    "gap_end": "voyage",
}


def segment_trajectory(points: Sequence[CriticalPoint]) -> list[TrajectoryPart]:
    """Cut one entity's time-ordered synopsis into behavioural parts.

    The segmentation follows the stops-and-moves model the ontology
    generalizes: a ``stop_start``/``gap_start`` closes the current part
    and opens a ``stopped``/``gap`` part; the matching ``*_end`` closes
    it and resumes a ``voyage`` part. Boundary points belong to *both*
    adjacent parts (they are the shared articulation nodes).
    """
    ordered = sorted(points, key=lambda cp: cp.t)
    if not ordered:
        return []
    entity_id = ordered[0].entity_id
    if any(cp.entity_id != entity_id for cp in ordered):
        raise ValueError("segment_trajectory expects a single entity's points")
    parts: list[TrajectoryPart] = []
    current: list[CriticalPoint] = []
    behaviour = "voyage"

    def close(next_behaviour: str, shared: CriticalPoint | None) -> None:
        nonlocal current, behaviour
        if current:
            parts.append(
                TrajectoryPart(
                    part_id=f"{entity_id}/part-{len(parts)}",
                    entity_id=entity_id,
                    behaviour=behaviour,
                    points=tuple(current),
                )
            )
        current = [shared] if shared is not None else []
        behaviour = next_behaviour

    for cp in ordered:
        opener = _BOUNDARY_OPENERS.get(cp.kind)
        if opener is not None and opener != behaviour:
            current.append(cp)
            close(opener, shared=cp)
        else:
            current.append(cp)
    close("voyage", shared=None)
    return parts


def segments_by_entity(points: Iterable[CriticalPoint]) -> dict[str, list[TrajectoryPart]]:
    """Segment a multi-entity synopsis corpus."""
    buckets: dict[str, list[CriticalPoint]] = {}
    for cp in points:
        buckets.setdefault(cp.entity_id, []).append(cp)
    return {eid: segment_trajectory(pts) for eid, pts in buckets.items()}


def part_iri(part: TrajectoryPart) -> IRI:
    return entity_iri("part", part.part_id)


def segmentation_triples(parts: Iterable[TrajectoryPart]) -> Iterator[Triple]:
    """The Figure-3 structural triples of a segmentation.

    Emits, per part: its type, behaviour label, temporal extent, the
    ``dtc:hasPart`` link from its trajectory, and ``dtc:encloses`` links
    to each of its semantic nodes.
    """
    for part in parts:
        part_node = part_iri(part)
        trajectory = entity_iri("trajectory", part.entity_id)
        yield Triple(part_node, A, VOC.TrajectoryPart)
        yield Triple(part_node, VOC.eventType, Literal.of(part.behaviour))
        yield Triple(part_node, VOC.timestamp, Literal.of(part.t_start))
        yield Triple(trajectory, VOC.hasPart, part_node)
        for cp in part.points:
            yield Triple(part_node, VOC.encloses, node_iri(cp.entity_id, cp.t))
