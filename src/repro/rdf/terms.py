"""RDF terms and triples: the data model of the knowledge graph.

A deliberately small, allocation-light RDF core: IRIs, literals with
optional datatype, blank nodes, and variables (used both by the graph
templates of the RDF generators and by the SPARQL-lite query engine of
the knowledge-graph store).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class IRI:
    """An IRI reference."""

    value: str

    def __str__(self) -> str:
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """The fragment / last path segment (for display)."""
        v = self.value
        for sep in ("#", "/"):
            if sep in v:
                v = v.rsplit(sep, 1)[1]
                break
        return v


#: Common XSD datatypes.
XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"
XSD_DATETIME = "http://www.w3.org/2001/XMLSchema#dateTime"
WKT_LITERAL = "http://www.opengis.net/ont/geosparql#wktLiteral"


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with an optional datatype IRI."""

    value: str
    datatype: str = XSD_STRING

    def __str__(self) -> str:
        if self.datatype == XSD_STRING:
            return f'"{self.value}"'
        return f'"{self.value}"^^<{self.datatype}>'

    @classmethod
    def of(cls, value: Union[str, float, int, bool]) -> "Literal":
        """Build a literal with the natural datatype of a Python value."""
        if isinstance(value, bool):
            return cls("true" if value else "false", XSD_BOOLEAN)
        if isinstance(value, int):
            return cls(str(value), XSD_INTEGER)
        if isinstance(value, float):
            return cls(repr(value), XSD_DOUBLE)
        return cls(str(value), XSD_STRING)

    @classmethod
    def wkt(cls, text: str) -> "Literal":
        """A GeoSPARQL WKT geometry literal."""
        return cls(text, WKT_LITERAL)

    def as_float(self) -> float:
        """The numeric value (raises for non-numeric literals)."""
        return float(self.value)


@dataclass(frozen=True, slots=True)
class BlankNode:
    """An RDF blank node."""

    label: str

    def __str__(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True, slots=True)
class Variable:
    """A query/template variable, written ``?name``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: Anything that can occupy a triple position in data.
Term = Union[IRI, Literal, BlankNode]
#: Anything that can occupy a position in a pattern.
PatternTerm = Union[IRI, Literal, BlankNode, Variable]


@dataclass(frozen=True, slots=True)
class Triple:
    """A ground RDF triple."""

    s: Term
    p: IRI
    o: Term

    def __str__(self) -> str:
        return f"{self.s} {self.p} {self.o} ."


def is_ground(term: PatternTerm) -> bool:
    """Whether the term is concrete (not a variable)."""
    return not isinstance(term, Variable)
