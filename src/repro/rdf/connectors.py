"""Data connectors (Section 4.2.3, component (a)).

A connector attaches to a data source and yields field dictionaries,
optionally applying basic cleaning, value computation/conversion, simple
filters, or generating values not explicitly in the source (e.g.
extracting the WKT of a shapefile geometry). Its output feeds the
triple generators.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping

#: A transformation applied to each record (may return None to drop it).
RecordTransform = Callable[[dict[str, Any]], dict[str, Any] | None]


@dataclass
class ConnectorStats:
    """What the connector saw and did."""

    records_in: int = 0
    records_out: int = 0
    dropped: int = 0


class DataConnector:
    """Base connector: pulls raw records, applies filters/derivations in order."""

    def __init__(
        self,
        filters: Iterable[Callable[[Mapping[str, Any]], bool]] = (),
        derivations: Iterable[tuple[str, Callable[[Mapping[str, Any]], Any]]] = (),
        transforms: Iterable[RecordTransform] = (),
    ):
        self.filters = list(filters)
        self.derivations = list(derivations)
        self.transforms = list(transforms)
        self.stats = ConnectorStats()

    def _raw_records(self) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def records(self) -> Iterator[dict[str, Any]]:
        """The cleaned, derived, filtered record stream."""
        for raw in self._raw_records():
            self.stats.records_in += 1
            record: dict[str, Any] | None = dict(raw)
            for transform in self.transforms:
                record = transform(record)
                if record is None:
                    break
            if record is None:
                self.stats.dropped += 1
                continue
            if not all(f(record) for f in self.filters):
                self.stats.dropped += 1
                continue
            for name, derive in self.derivations:
                record[name] = derive(record)
            self.stats.records_out += 1
            yield record

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self.records()


class IterableConnector(DataConnector):
    """Connector over any in-memory iterable of dict-like records."""

    def __init__(self, source: Iterable[Mapping[str, Any]], **kwargs):
        super().__init__(**kwargs)
        self._source = source

    def _raw_records(self) -> Iterator[dict[str, Any]]:
        for item in self._source:
            yield dict(item)


class CSVConnector(DataConnector):
    """Connector over CSV text lines (header row required)."""

    def __init__(self, lines: Iterable[str], delimiter: str = ",", **kwargs):
        super().__init__(**kwargs)
        self._lines = lines
        self._delimiter = delimiter

    def _raw_records(self) -> Iterator[dict[str, Any]]:
        reader = csv.DictReader(iter(self._lines), delimiter=self._delimiter)
        for row in reader:
            yield dict(row)


class JSONLinesConnector(DataConnector):
    """Connector over newline-delimited JSON messages (the AIS stream format)."""

    def __init__(self, lines: Iterable[str], skip_malformed: bool = True, **kwargs):
        super().__init__(**kwargs)
        self._lines = lines
        self._skip_malformed = skip_malformed

    def _raw_records(self) -> Iterator[dict[str, Any]]:
        for line in self._lines:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                if self._skip_malformed:
                    self.stats.dropped += 1
                    continue
                raise
            if isinstance(obj, dict):
                yield obj
            elif self._skip_malformed:
                self.stats.dropped += 1
            else:
                raise ValueError(f"JSON line is not an object: {line[:60]!r}")


def numeric(*names: str) -> RecordTransform:
    """A transform converting the named fields to float (drop on failure)."""

    def transform(record: dict[str, Any]) -> dict[str, Any] | None:
        for name in names:
            if name in record and record[name] is not None:
                try:
                    record[name] = float(record[name])
                except (TypeError, ValueError):
                    return None
        return record

    return transform


def require(*names: str) -> Callable[[Mapping[str, Any]], bool]:
    """A filter requiring the named fields to be present and non-null."""

    def check(record: Mapping[str, Any]) -> bool:
        return all(record.get(name) is not None for name in names)

    return check
