"""Namespaces and the datAcron ontology vocabulary (Section 4.1).

The datAcron ontology represents semantic trajectories at varying levels
of spatio-temporal analysis: raw positions, semantic nodes (critical
points), trajectory parts, whole trajectories, and the events that occur
on them — aligned with DUL, GeoSPARQL Simple Features and SSN. This
module defines the subset of classes and properties the paper's
components exchange (Figure 3 of the paper).
"""

from __future__ import annotations

from .terms import IRI


class Namespace:
    """A convenience IRI factory: ``ns.term`` and ``ns['term']``."""

    def __init__(self, base: str):
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self._base + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self._base + name)

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


#: The datAcron ontology namespace.
DTC = Namespace("http://www.datacron-project.eu/datAcron#")
#: DOLCE+DnS Ultralite (events).
DUL = Namespace("http://www.ontologydesignpatterns.org/ont/dul/DUL.owl#")
#: GeoSPARQL.
GEO = Namespace("http://www.opengis.net/ont/geosparql#")
#: Simple Features geometry classes.
SF = Namespace("http://www.opengis.net/ont/sf#")
#: SSN/SOSA observations (weather).
SOSA = Namespace("http://www.w3.org/ns/sosa/")
#: RDF / RDFS built-ins.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")

#: rdf:type shorthand.
A = RDF.type


class DatacronVocabulary:
    """The classes and properties used across the reproduction.

    Grouped here (rather than scattered as string constants) so tests can
    assert that every RDFizer emits only vocabulary terms.
    """

    # Classes (Figure 3 of the paper).
    Trajectory = DTC.Trajectory
    TrajectoryPart = DTC.TrajectoryPart
    SemanticNode = DTC.SemanticNode
    RawPosition = DTC.RawPosition
    MovingObject = DTC.MovingObject
    Vessel = DTC.Vessel
    Aircraft = DTC.Aircraft
    Event = DUL["Event"]
    LowLevelEvent = DTC.LowLevelEvent
    Region = DTC.Region
    Port = DTC.Port
    WeatherCondition = DTC.WeatherCondition
    Geometry = SF.Geometry
    Point = SF.Point
    Polygon = SF.Polygon

    # Object properties.
    hasPart = DTC.hasPart
    ofMovingObject = DTC.ofMovingObject
    hasSemanticNode = DTC.hasSemanticNode
    encloses = DTC.encloses
    occurs = DTC.occurs
    hasGeometry = GEO.hasGeometry
    within = DUL.isLocationOf      # see note below: within/nearTo link predicates
    hasWeather = DTC.hasWeatherCondition

    # Link-discovery relation predicates (Section 4.2.4 reports dul:within
    # and geosparql:nearTo counts).
    dul_within = DUL.within
    nearTo = GEO.nearTo

    # Datatype properties.
    asWKT = GEO.asWKT
    timestamp = DTC.hasTimestamp
    speed = DTC.reportedSpeed
    heading = DTC.reportedHeading
    altitude = DTC.reportedAltitude
    verticalRate = DTC.verticalRate
    eventType = DTC.eventType
    mmsi = DTC.hasMMSI
    icao24 = DTC.hasICAO24
    regionKind = DTC.regionKind
    label = RDFS.label
    windU = DTC.windU
    windV = DTC.windV
    waveHeight = DTC.waveHeight
    visibility = DTC.visibility


VOC = DatacronVocabulary


def entity_iri(kind: str, identifier: str) -> IRI:
    """Mint the IRI of a domain entity (vessel, trajectory, node, ...)."""
    return IRI(f"{DTC.base}{kind}/{identifier}")


def node_iri(entity_id: str, t: float) -> IRI:
    """Mint the IRI of a semantic node of an entity at a point in time."""
    return IRI(f"{DTC.base}node/{entity_id}/{t:.3f}")
