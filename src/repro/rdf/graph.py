"""An indexed, in-memory RDF graph with pattern matching.

Backs two components: the link-discovery framework applies (SPARQL-like)
triple-pattern filters to each graph fragment an RDF generator emits,
and tests use it as the reference model the distributed KG store must
agree with.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .terms import IRI, PatternTerm, Term, Triple, Variable, is_ground


class Graph:
    """A set of triples with SPO/POS/OSP hash indexes."""

    def __init__(self, triples: Iterable[Triple] = ()):
        self._triples: set[Triple] = set()
        self._by_s: dict[Term, set[Triple]] = {}
        self._by_p: dict[IRI, set[Triple]] = {}
        self._by_o: dict[Term, set[Triple]] = {}
        for t in triples:
            self.add(t)

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns False if it was already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_s.setdefault(triple.s, set()).add(triple)
        self._by_p.setdefault(triple.p, set()).add(triple)
        self._by_o.setdefault(triple.o, set()).add(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many; returns how many were new."""
        return sum(1 for t in triples if self.add(t))

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._by_s[triple.s].discard(triple)
        self._by_p[triple.p].discard(triple)
        self._by_o[triple.o].discard(triple)
        return True

    def match(
        self,
        s: PatternTerm | None = None,
        p: PatternTerm | None = None,
        o: PatternTerm | None = None,
    ) -> Iterator[Triple]:
        """All triples matching the pattern; None or a Variable is a wildcard."""
        s_fixed = s if s is not None and is_ground(s) else None
        p_fixed = p if p is not None and is_ground(p) else None
        o_fixed = o if o is not None and is_ground(o) else None
        # Choose the most selective index available.
        candidates: Iterable[Triple]
        if s_fixed is not None:
            candidates = self._by_s.get(s_fixed, set())
        elif o_fixed is not None:
            candidates = self._by_o.get(o_fixed, set())
        elif p_fixed is not None:
            candidates = self._by_p.get(p_fixed, set())
        else:
            candidates = self._triples
        for t in candidates:
            if p_fixed is not None and t.p != p_fixed:
                continue
            if s_fixed is not None and t.s != s_fixed:
                continue
            if o_fixed is not None and t.o != o_fixed:
                continue
            yield t

    def subjects(self, p: IRI | None = None, o: Term | None = None) -> set[Term]:
        """Distinct subjects of triples matching (?, p, o)."""
        return {t.s for t in self.match(None, p, o)}

    def objects(self, s: Term | None = None, p: IRI | None = None) -> set[Term]:
        """Distinct objects of triples matching (s, p, ?)."""
        return {t.o for t in self.match(s, p, None)}

    def value(self, s: Term, p: IRI) -> Term | None:
        """A single object of (s, p, ?), or None; raises if ambiguous."""
        objs = self.objects(s, p)
        if not objs:
            return None
        if len(objs) > 1:
            raise ValueError(f"value({s}, {p}) is ambiguous: {len(objs)} objects")
        return next(iter(objs))

    def query_bgp(self, patterns: list[tuple[PatternTerm, PatternTerm, PatternTerm]]) -> list[dict[str, Term]]:
        """Evaluate a basic graph pattern by backtracking join.

        Returns one binding dict per solution. Small and correct — used as
        the reference evaluator for the KG store's physical plans and by the
        link-discovery SPARQL filters.
        """
        solutions: list[dict[str, Term]] = []

        def substitute(term: PatternTerm, binding: dict[str, Term]) -> PatternTerm:
            if isinstance(term, Variable) and term.name in binding:
                return binding[term.name]
            return term

        def backtrack(idx: int, binding: dict[str, Term]) -> None:
            if idx == len(patterns):
                solutions.append(dict(binding))
                return
            s, p, o = (substitute(term, binding) for term in patterns[idx])
            for triple in self.match(s, p, o):
                extension = dict(binding)
                ok = True
                for pattern_term, actual in ((s, triple.s), (p, triple.p), (o, triple.o)):
                    if isinstance(pattern_term, Variable):
                        if extension.get(pattern_term.name, actual) != actual:
                            ok = False
                            break
                        extension[pattern_term.name] = actual
                    elif pattern_term != actual:
                        ok = False
                        break
                if ok:
                    backtrack(idx + 1, extension)

        backtrack(0, {})
        return solutions
