"""Trajectory prediction (S9): RMF/RMF* for FLP, hybrid clustering/HMM for TP."""

from .blind import BlindHMMPredictor, BlindModelReport
from .clustering import OpticsResult, extract_clusters, medoid_of, optics, semt_optics
from .distances import erp_distance, flight_distance, point_distance
from .evaluation import (
    HorizonErrors,
    flp_horizon_sweep,
    flp_sweep_many,
    rmse,
    waypoint_rmse,
)
from .feedback import ErrorFeedbackPredictor, FeedbackStats
from .features import EnrichedPoint, FlightFeatures, extract_features, features_dataset, signed_waypoint_deviations
from .hmm import DeviationBins, DeviationHMM, GaussianHMM
from .hybrid import HybridClusteringHMM, HybridEvaluation, HybridModelReport
from .rmf import PredictedPoint, RMFPredictor, RMFStarPredictor

__all__ = [
    "BlindHMMPredictor",
    "BlindModelReport",
    "DeviationBins",
    "DeviationHMM",
    "EnrichedPoint",
    "ErrorFeedbackPredictor",
    "FeedbackStats",
    "FlightFeatures",
    "GaussianHMM",
    "HorizonErrors",
    "HybridClusteringHMM",
    "HybridEvaluation",
    "HybridModelReport",
    "OpticsResult",
    "PredictedPoint",
    "RMFPredictor",
    "RMFStarPredictor",
    "erp_distance",
    "extract_clusters",
    "extract_features",
    "features_dataset",
    "flight_distance",
    "flp_horizon_sweep",
    "flp_sweep_many",
    "medoid_of",
    "optics",
    "point_distance",
    "rmse",
    "semt_optics",
    "signed_waypoint_deviations",
    "waypoint_rmse",
]
