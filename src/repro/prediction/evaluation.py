"""Evaluation harnesses for the FLP and TP experiments (Figure 5).

* :func:`flp_horizon_sweep` reproduces the Figure 5(a) protocol: walk a
  trajectory online, at each step predict the next ``k`` positions, and
  accumulate the 2-D spatial error per look-ahead step.
* :func:`waypoint_rmse` reproduces the Figure 5(b) metric: RMSE of the
  predicted vs. actual per-waypoint deviation, per cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

from ..geo import PositionFix, Trajectory, haversine_m

from .rmf import PredictedPoint


class OnlinePredictor(Protocol):
    """What an FLP predictor must expose to be benchmarked."""

    name: str

    def observe(self, fix: PositionFix) -> None: ...
    def predict(self, k: int, step_s: float | None = None) -> list[PredictedPoint]: ...
    def ready(self) -> bool: ...
    def reset(self) -> None: ...


@dataclass
class HorizonErrors:
    """Per-look-ahead-step error accumulation."""

    k: int
    errors_m: list[list[float]]

    @classmethod
    def empty(cls, k: int) -> "HorizonErrors":
        return cls(k, [[] for _ in range(k)])

    def add(self, step: int, error_m: float) -> None:
        self.errors_m[step].append(error_m)

    def mean(self, step: int) -> float:
        e = self.errors_m[step]
        return sum(e) / len(e) if e else math.nan

    def stdev(self, step: int) -> float:
        e = self.errors_m[step]
        if len(e) < 2:
            return math.nan
        m = self.mean(step)
        return math.sqrt(sum((x - m) ** 2 for x in e) / len(e))

    def count(self, step: int) -> int:
        return len(self.errors_m[step])

    def all_errors(self) -> list[float]:
        return [e for step in self.errors_m for e in step]

    def summary_rows(self, step_s: float) -> list[dict[str, float]]:
        """One row per look-ahead step: seconds ahead, mean, stdev, n."""
        return [
            {
                "lookahead_s": (i + 1) * step_s,
                "mean_m": self.mean(i),
                "stdev_m": self.stdev(i),
                "n": self.count(i),
            }
            for i in range(self.k)
        ]


def flp_horizon_sweep(
    predictor: OnlinePredictor,
    trajectory: Trajectory,
    k: int = 8,
    warmup: int = 8,
    stride: int = 1,
) -> HorizonErrors:
    """Online walk-forward evaluation of an FLP predictor on one trajectory.

    At each position (after ``warmup``), the predictor sees the history up
    to that point and predicts ``k`` steps ahead; each prediction is scored
    against the actual future fix by 2-D great-circle distance — the error
    measure of Figure 5(a).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    predictor.reset()
    fixes = list(trajectory)
    errors = HorizonErrors.empty(k)
    for i, fix in enumerate(fixes):
        predictor.observe(fix)
        if i < warmup or i % stride != 0:
            continue
        remaining = len(fixes) - 1 - i
        if remaining < 1:
            break
        horizon = min(k, remaining)
        step_s = fixes[i + 1].t - fix.t if fixes[i + 1].t > fix.t else None
        try:
            predictions = predictor.predict(horizon, step_s=step_s)
        except RuntimeError:
            continue
        for step, predicted in enumerate(predictions):
            actual = fixes[i + 1 + step]
            errors.add(step, haversine_m(predicted.lon, predicted.lat, actual.lon, actual.lat))
    return errors


def flp_sweep_many(
    predictor: OnlinePredictor,
    trajectories: Sequence[Trajectory],
    k: int = 8,
    warmup: int = 8,
    stride: int = 1,
) -> HorizonErrors:
    """Pooled horizon sweep over many trajectories (predictor reset per track)."""
    pooled = HorizonErrors.empty(k)
    for trajectory in trajectories:
        errors = flp_horizon_sweep(predictor, trajectory, k=k, warmup=warmup, stride=stride)
        for step in range(k):
            pooled.errors_m[step].extend(errors.errors_m[step])
    return pooled


def rmse(values: Sequence[float]) -> float:
    """Root mean square of a sequence (nan for empty)."""
    if not values:
        return math.nan
    return math.sqrt(sum(v * v for v in values) / len(values))


def waypoint_rmse(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """RMSE between predicted and actual per-waypoint deviations (metres)."""
    if len(predicted) != len(actual):
        raise ValueError("deviation sequences differ in length")
    return rmse([p - a for p, a in zip(predicted, actual)])
