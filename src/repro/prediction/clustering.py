"""SemT-OPTICS-style density clustering of enriched trajectories (Section 5).

An OPTICS implementation (Ankerst et al.) over an arbitrary distance
function — here the semantic-aware ERP of :mod:`.distances` — producing
the reachability ordering, from which clusters are extracted with a
reachability threshold. Per the paper's hybrid method, each cluster
exposes its **medoid**, whose reference points are the only ones the
downstream HMM trains on (a key source of the claimed resource savings).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


@dataclass
class OpticsResult:
    """The OPTICS ordering plus extracted clusters."""

    order: list[int]                 # item indices in reachability order
    reachability: list[float]        # reachability distance per ordered position
    labels: list[int]                # cluster id per item (-1 = noise)
    medoids: dict[int, int]          # cluster id -> item index of the medoid

    @property
    def n_clusters(self) -> int:
        return len(self.medoids)

    def members(self, cluster_id: int) -> list[int]:
        return [i for i, lbl in enumerate(self.labels) if lbl == cluster_id]


def optics(
    items: Sequence[T],
    distance: Callable[[T, T], float],
    eps: float = math.inf,
    min_pts: int = 4,
) -> tuple[list[int], list[float], list[list[float]]]:
    """Core OPTICS: returns (ordering, reachability per ordered position, D).

    ``D`` is the materialized distance matrix (reused for medoids). For the
    corpus sizes of the TP experiments (hundreds of flights) the O(n^2)
    matrix is the right trade-off.
    """
    n = len(items)
    if n == 0:
        return [], [], []
    if min_pts < 2:
        raise ValueError("min_pts must be >= 2")
    D = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = distance(items[i], items[j])
            D[i][j] = d
            D[j][i] = d

    def core_distance(i: int) -> float:
        neighbours = sorted(d for j, d in enumerate(D[i]) if j != i and d <= eps)
        if len(neighbours) < min_pts - 1:
            return math.inf
        return neighbours[min_pts - 2]

    core = [core_distance(i) for i in range(n)]
    processed = [False] * n
    reach = [math.inf] * n
    order: list[int] = []

    for start in range(n):
        if processed[start]:
            continue
        processed[start] = True
        order.append(start)
        seeds: dict[int, float] = {}
        _update_seeds(start, core, D, processed, reach, seeds, eps)
        while seeds:
            nxt = min(seeds, key=lambda j: (seeds[j], j))
            del seeds[nxt]
            processed[nxt] = True
            order.append(nxt)
            _update_seeds(nxt, core, D, processed, reach, seeds, eps)

    ordered_reach = [reach[i] for i in order]
    return order, ordered_reach, D


def _update_seeds(center, core, D, processed, reach, seeds, eps):
    cd = core[center]
    if math.isinf(cd):
        return
    for j in range(len(D)):
        if processed[j] or D[center][j] > eps:
            continue
        new_reach = max(cd, D[center][j])
        if new_reach < reach[j]:
            reach[j] = new_reach
            seeds[j] = new_reach


def extract_clusters(
    order: list[int],
    reachability: list[float],
    threshold: float,
    min_cluster_size: int = 3,
) -> list[int]:
    """Cut the reachability plot at ``threshold``: valleys become clusters."""
    labels = [-1] * len(order)
    current = -1
    active = False
    counts: dict[int, int] = {}
    for pos, item in enumerate(order):
        if reachability[pos] > threshold:
            active = False
            continue
        if not active:
            current += 1
            active = True
            # The point that *started* the valley (the previous ordered point
            # with high reachability) belongs to the cluster too.
            if pos > 0 and labels[order[pos - 1]] == -1:
                labels[order[pos - 1]] = current
                counts[current] = counts.get(current, 0) + 1
        labels[item] = current
        counts[current] = counts.get(current, 0) + 1
    # Demote undersized clusters to noise.
    for i, lbl in enumerate(labels):
        if lbl >= 0 and counts.get(lbl, 0) < min_cluster_size:
            labels[i] = -1
    # Re-number densely.
    remap: dict[int, int] = {}
    for i, lbl in enumerate(labels):
        if lbl >= 0:
            labels[i] = remap.setdefault(lbl, len(remap))
    return labels


def medoid_of(member_indices: list[int], D: list[list[float]]) -> int:
    """The member minimizing total distance to the rest of the cluster."""
    if not member_indices:
        raise ValueError("empty cluster has no medoid")
    return min(member_indices, key=lambda i: sum(D[i][j] for j in member_indices))


def semt_optics(
    items: Sequence[T],
    distance: Callable[[T, T], float],
    threshold: float,
    eps: float = math.inf,
    min_pts: int = 4,
    min_cluster_size: int = 3,
) -> OpticsResult:
    """The full SemT-OPTICS pipeline: order, extract, find medoids."""
    order, reachability, D = optics(items, distance, eps=eps, min_pts=min_pts)
    labels = extract_clusters(order, reachability, threshold, min_cluster_size)
    medoids = {}
    for cluster_id in sorted(set(lbl for lbl in labels if lbl >= 0)):
        members = [i for i, lbl in enumerate(labels) if lbl == cluster_id]
        medoids[cluster_id] = medoid_of(members, D)
    return OpticsResult(order, reachability, labels, medoids)
