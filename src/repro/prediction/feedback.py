"""Error-feedback modes for online future-location prediction (Section 5).

The paper describes FLP as "inherently dynamic and continuously
adaptive, exploiting measured (**reactive** mode) or predicted
(**proactive** mode) error as feedback". This module wraps any online
predictor with that loop:

* **reactive** — each time a new fix arrives, the previous 1-step
  prediction is scored against it; an exponentially-weighted mean of
  the observed error *vector* is maintained and added to subsequent
  predictions (a bias correction that adapts as fast as the EWMA).
* **proactive** — the same correction, but the error vector applied at
  look-ahead step ``k`` is the 1-step error scaled by ``k`` (the
  predicted accumulation of the current bias), so long horizons are
  corrected before their errors are ever observed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo import LocalProjection, PositionFix

from .evaluation import OnlinePredictor
from .rmf import PredictedPoint


@dataclass
class FeedbackStats:
    """What the feedback loop has learned so far."""

    corrections_applied: int = 0
    bias_east_m: float = 0.0
    bias_north_m: float = 0.0


class ErrorFeedbackPredictor:
    """Wrap an online FLP predictor with reactive/proactive error feedback."""

    def __init__(self, inner: OnlinePredictor, mode: str = "reactive", alpha: float = 0.3):
        if mode not in ("reactive", "proactive"):
            raise ValueError("mode must be 'reactive' or 'proactive'")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.inner = inner
        self.mode = mode
        self.alpha = alpha
        self.name = f"{inner.name}+{mode}"
        self._pending: PredictedPoint | None = None   # last 1-step prediction
        self._bias_e = 0.0
        self._bias_n = 0.0
        self.stats = FeedbackStats()

    def reset(self) -> None:
        self.inner.reset()
        self._pending = None
        self._bias_e = 0.0
        self._bias_n = 0.0
        self.stats = FeedbackStats()

    def ready(self) -> bool:
        return self.inner.ready()

    def observe(self, fix: PositionFix) -> None:
        # Score the previous 1-step prediction against this actual fix.
        if self._pending is not None:
            proj = LocalProjection(fix.lon, fix.lat)
            pe, pn = proj.to_xy(self._pending.lon, self._pending.lat)
            # Error vector = actual - predicted (what must be *added* to future
            # predictions to land on the truth).
            err_e, err_n = -pe, -pn
            self._bias_e = (1.0 - self.alpha) * self._bias_e + self.alpha * err_e
            self._bias_n = (1.0 - self.alpha) * self._bias_n + self.alpha * err_n
            self.stats.bias_east_m = self._bias_e
            self.stats.bias_north_m = self._bias_n
        self.inner.observe(fix)
        # Stage the next 1-step prediction for scoring at the next observe.
        self._pending = None
        if self.inner.ready():
            try:
                self._pending = self.inner.predict(1)[0]
            except RuntimeError:
                self._pending = None

    def predict(self, k: int, step_s: float | None = None) -> list[PredictedPoint]:
        raw = self.inner.predict(k, step_s=step_s)
        if not raw:
            return raw
        corrected: list[PredictedPoint] = []
        for step, point in enumerate(raw, start=1):
            scale = float(step) if self.mode == "proactive" else 1.0
            proj = LocalProjection(point.lon, point.lat)
            lon, lat = proj.to_lonlat(self._bias_e * scale, self._bias_n * scale)
            corrected.append(PredictedPoint(point.t, lon, lat, point.alt))
            self.stats.corrections_applied += 1
        return corrected
