"""The "blind" HMM baseline (Section 5's comparison, the paper's [8][9]).

A trajectory predictor that ignores flight plans and enrichment
entirely: it quantizes raw positions into grid cells, treats the cells
as hidden states, learns cell-to-cell transition statistics from raw
historic tracks, and predicts a trajectory by following the most likely
transition chain from the departure cell. This is what the paper calls
"blind approaches exploiting raw trajectory data", against which the
hybrid method shows an order of magnitude better cross-track accuracy
with orders of magnitude fewer resources (the blind model's state space
is the whole spatial grid).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geo import BBox, EquiGrid, PositionFix, Trajectory, cross_track_error_m


@dataclass
class BlindModelReport:
    """Training accounting (resource axis of the comparison)."""

    n_states: int = 0
    n_nonzero_transitions: int = 0
    total_parameters: int = 0
    train_seconds: float = 0.0


class BlindHMMPredictor:
    """Grid-state Markov model over raw positions."""

    def __init__(self, bbox: BBox, cols: int = 80, rows: int = 80, step_s: float = 30.0):
        self.grid = EquiGrid(bbox, cols, rows)
        self.step_s = step_s
        self._transitions: dict[int, dict[int, int]] = {}
        self._cell_means: dict[int, tuple[float, float, float, int]] = {}  # sums for mean
        self.report = BlindModelReport()

    def fit(self, trajectories: Sequence[Trajectory]) -> BlindModelReport:
        """Learn cell transition counts and per-cell mean positions."""
        if not trajectories:
            raise ValueError("cannot fit on an empty corpus")
        start = time.perf_counter()
        self._transitions.clear()
        self._cell_means.clear()
        for trajectory in trajectories:
            resampled = trajectory.resampled(self.step_s)
            prev_cell: int | None = None
            for fix in resampled:
                cell = self.grid.cell_id(fix.lon, fix.lat)
                lon_s, lat_s, alt_s, n = self._cell_means.get(cell, (0.0, 0.0, 0.0, 0))
                self._cell_means[cell] = (lon_s + fix.lon, lat_s + fix.lat, alt_s + fix.alt, n + 1)
                if prev_cell is not None and prev_cell != cell:
                    row = self._transitions.setdefault(prev_cell, {})
                    row[cell] = row.get(cell, 0) + 1
                prev_cell = cell
        nonzero = sum(len(row) for row in self._transitions.values())
        self.report = BlindModelReport(
            n_states=len(self._cell_means),
            n_nonzero_transitions=nonzero,
            # Dense-parameter accounting: a classic HMM over the full grid
            # carries |S|^2 transitions plus 2-D Gaussian emissions per state.
            total_parameters=len(self.grid) * len(self.grid) + 4 * len(self.grid),
            train_seconds=time.perf_counter() - start,
        )
        return self.report

    def _cell_center(self, cell: int) -> tuple[float, float, float]:
        lon_s, lat_s, alt_s, n = self._cell_means[cell]
        return lon_s / n, lat_s / n, alt_s / n

    def predict_path(self, start_lon: float, start_lat: float, max_steps: int = 400) -> list[tuple[float, float, float]]:
        """Follow maximum-likelihood transitions from the start cell.

        Stops at an absorbing cell (no outgoing transitions) or when a cycle
        is revisited.
        """
        cell = self.grid.cell_id(start_lon, start_lat)
        if cell not in self._cell_means:
            # Snap to the nearest trained cell.
            if not self._cell_means:
                raise RuntimeError("model is not fitted")
            cell = min(
                self._cell_means,
                key=lambda c: self._planar2(c, start_lon, start_lat),
            )
        path = [self._cell_center(cell)]
        visited = {cell}
        for _ in range(max_steps):
            row = self._transitions.get(cell)
            if not row:
                break
            cell = max(row, key=lambda c: (row[c], -c))
            if cell in visited:
                break
            visited.add(cell)
            path.append(self._cell_center(cell))
        return path

    def _planar2(self, cell: int, lon: float, lat: float) -> float:
        clon, clat, _ = self._cell_center(cell)
        return (clon - lon) ** 2 + (clat - lat) ** 2

    def predicted_trajectory(self, entity_id: str, start_lon: float, start_lat: float, t0: float = 0.0) -> Trajectory:
        """The predicted path as a Trajectory (uniform step timing)."""
        path = self.predict_path(start_lon, start_lat)
        fixes = [
            PositionFix(entity_id=entity_id, t=t0 + i * self.step_s, lon=lon, lat=lat, alt=alt)
            for i, (lon, lat, alt) in enumerate(path)
        ]
        return Trajectory(entity_id, fixes)

    def cross_track_rmse(self, actual: Trajectory) -> float:
        """Cross-track RMSE of the blind prediction against an actual track."""
        first = actual[0]
        predicted = self.predicted_trajectory(actual.entity_id, first.lon, first.lat, first.t)
        if len(predicted) < 2:
            raise RuntimeError("blind prediction degenerate (single cell)")
        errors = cross_track_error_m(list(actual), list(predicted))
        return float(np.sqrt(np.mean(np.square(errors))))
