"""Future Location Prediction: RMF and the enhanced RMF* (Section 5).

**RMF** (Tao et al., the paper's [31]) captures the motion dynamics of an
entity in a differential recursive formula: the next position is a
learned linear combination of the ``f`` most recent positions,

    z_{n+1} = c_1 z_n + c_2 z_{n-1} + ... + c_f z_{n-f+1},

with the coefficients re-fitted over the recent window (least squares).
Iterating the recursion yields the next ``k`` positions. RMF can express
linear, polynomial and circular motions, but — as the paper observes —
it degrades badly through the non-linear phases of real flights.

**RMF*** is datAcron's enhancement: it runs in *linear mode* (constant-
velocity extrapolation, which is optimal on the steady parts of a
flight) and switches to *pattern-matching mode* only when a shift in
motion type is signalled — here detected from heading/vertical-rate
drift, exactly the critical-point triggers of the synopses generator.
In pattern mode it fits a small library of motion primitives (linear,
circular/quadratic via the RMF recursion of different orders) and uses
the best-fitting one. Both predictors are online: O(f) state, O(f^3)
fit per step.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..geo import LocalProjection, PositionFix
from ..geo.units import heading_difference


@dataclass(frozen=True, slots=True)
class PredictedPoint:
    """One predicted future position."""

    t: float
    lon: float
    lat: float
    alt: float = 0.0


class RMFPredictor:
    """The base Recursive Motion Function predictor.

    Works on a sliding window of the last ``window`` positions (projected
    to a local plane), fitting an order-``f`` linear recursion per axis.
    """

    name = "rmf"

    def __init__(self, f: int = 3, window: int = 12, registry=None):
        if f < 1:
            raise ValueError("recursion order f must be >= 1")
        if window < 2 * f:
            raise ValueError("window must be at least 2*f to fit the recursion")
        self.f = f
        self.window = window
        self._fixes: deque[PositionFix] = deque(maxlen=window)
        #: Optional ``repro.obs.MetricsRegistry``: predictions report a
        #: per-horizon latency histogram ``prediction.<name>.h<k>.latency_s``.
        self.registry = registry

    def _observe_latency(self, k: int, seconds: float) -> None:
        if self.registry is not None:
            self.registry.counter(f"prediction.{self.name}.predictions").inc()
            self.registry.histogram(f"prediction.{self.name}.h{k}.latency_s").observe(seconds)

    def observe(self, fix: PositionFix) -> None:
        """Feed the next observed position."""
        self._fixes.append(fix)

    def reset(self) -> None:
        self._fixes.clear()

    def ready(self) -> bool:
        return len(self._fixes) >= self.f + 1

    def _fit_coefficients(self, series: np.ndarray) -> np.ndarray | None:
        """Least-squares fit of the order-f recursion to one axis."""
        f = self.f
        n = len(series)
        if n < f + 1:
            return None
        rows = n - f
        A = np.empty((rows, f))
        b = np.empty(rows)
        for i in range(rows):
            A[i] = series[i : i + f][::-1]
            b[i] = series[i + f]
        coeffs, *_ = np.linalg.lstsq(A, b, rcond=None)
        return coeffs

    def predict(self, k: int, step_s: float | None = None) -> list[PredictedPoint]:
        """Predict the next ``k`` positions."""
        if not self.ready():
            raise RuntimeError("not enough history to predict")
        start = perf_counter()
        fixes = list(self._fixes)
        proj = LocalProjection(fixes[-1].lon, fixes[-1].lat)
        xs = np.array([proj.to_xy(p.lon, p.lat)[0] for p in fixes])
        ys = np.array([proj.to_xy(p.lon, p.lat)[1] for p in fixes])
        zs = np.array([p.alt for p in fixes])
        dt = step_s if step_s is not None else self._median_step(fixes)
        cx = self._fit_coefficients(xs)
        cy = self._fit_coefficients(ys)
        cz = self._fit_coefficients(zs)
        out: list[PredictedPoint] = []
        hx = deque(xs[-self.f :], maxlen=self.f)
        hy = deque(ys[-self.f :], maxlen=self.f)
        hz = deque(zs[-self.f :], maxlen=self.f)
        t = fixes[-1].t
        for _ in range(k):
            nx = self._step(cx, hx)
            ny = self._step(cy, hy)
            nz = self._step(cz, hz)
            hx.append(nx)
            hy.append(ny)
            hz.append(nz)
            t += dt
            lon, lat = proj.to_lonlat(nx, ny)
            out.append(PredictedPoint(t, lon, lat, nz))
        self._observe_latency(k, perf_counter() - start)
        return out

    @staticmethod
    def _median_step(fixes: list[PositionFix]) -> float:
        gaps = sorted(b.t - a.t for a, b in zip(fixes, fixes[1:]) if b.t > a.t)
        return gaps[len(gaps) // 2] if gaps else 1.0

    @staticmethod
    def _step(coeffs: np.ndarray | None, history: deque) -> float:
        if coeffs is None:
            return history[-1]
        recent = list(history)[::-1][: len(coeffs)]
        value = float(np.dot(coeffs, recent))
        if not math.isfinite(value):
            return history[-1]
        return value


class RMFStarPredictor:
    """RMF*: linear mode with critical-point-triggered pattern matching.

    Mode logic:

    * **linear** — constant-velocity extrapolation from the last two
      observations (robust, zero-lag, ideal for the cruise phase);
    * **pattern** — entered when the recent heading drift or vertical
      rate exceeds thresholds (the same signals that yield ``turn`` and
      ``altitude_change`` critical points); fits the RMF primitive
      library (orders 2..f) plus the linear model and predicts with the
      lowest-residual one; drops back to linear mode once drift subsides.
    """

    name = "rmf_star"

    def __init__(
        self,
        f: int = 4,
        window: int = 16,
        turn_trigger_deg: float = 6.0,
        vrate_trigger_ms: float = 2.0,
        registry=None,
    ):
        if window < 2 * f:
            raise ValueError("window must be at least 2*f")
        self.f = f
        self.window = window
        self.turn_trigger_deg = turn_trigger_deg
        self.vrate_trigger_ms = vrate_trigger_ms
        self._fixes: deque[PositionFix] = deque(maxlen=window)
        self.mode = "linear"
        self.registry = registry

    def _observe_latency(self, k: int, seconds: float) -> None:
        if self.registry is not None:
            self.registry.counter(f"prediction.{self.name}.predictions").inc()
            self.registry.histogram(f"prediction.{self.name}.h{k}.latency_s").observe(seconds)

    def observe(self, fix: PositionFix) -> None:
        self._fixes.append(fix)
        self.mode = "pattern" if self._nonlinear_phase() else "linear"

    def reset(self) -> None:
        self._fixes.clear()
        self.mode = "linear"

    def ready(self) -> bool:
        return len(self._fixes) >= 2

    def _nonlinear_phase(self) -> bool:
        """Detect drift into a turn or a climb/descent transition."""
        fixes = list(self._fixes)
        if len(fixes) < 3:
            return False
        recent = fixes[-min(len(fixes), 6) :]
        headings = [p.heading for p in recent if p.heading is not None]
        if len(headings) >= 3:
            drift = max(heading_difference(h, headings[0]) for h in headings[1:])
            if drift > self.turn_trigger_deg:
                return True
        vrates = [p.vrate for p in recent if p.vrate is not None]
        if len(vrates) >= 2 and abs(vrates[-1] - vrates[0]) > self.vrate_trigger_ms:
            return True
        return False

    def predict(self, k: int, step_s: float | None = None) -> list[PredictedPoint]:
        if not self.ready():
            raise RuntimeError("not enough history to predict")
        start = perf_counter()
        fixes = list(self._fixes)
        dt = step_s if step_s is not None else RMFPredictor._median_step(fixes)
        if self.mode == "linear" or len(fixes) < self.f + 2:
            out = self._linear_predict(fixes, k, dt)
        else:
            out = self._pattern_predict(fixes, k, dt)
        self._observe_latency(k, perf_counter() - start)
        return out

    # -- linear primitive -------------------------------------------------------

    @staticmethod
    def _linear_predict(fixes: list[PositionFix], k: int, dt: float) -> list[PredictedPoint]:
        proj = LocalProjection(fixes[-1].lon, fixes[-1].lat)
        # Velocity from the last up-to-4 samples (noise-averaged).
        tail = fixes[-min(len(fixes), 4) :]
        x0, y0 = proj.to_xy(tail[0].lon, tail[0].lat)
        x1, y1 = proj.to_xy(tail[-1].lon, tail[-1].lat)
        span = max(1e-9, tail[-1].t - tail[0].t)
        vx, vy = (x1 - x0) / span, (y1 - y0) / span
        vz = (tail[-1].alt - tail[0].alt) / span
        out = []
        t = fixes[-1].t
        for i in range(1, k + 1):
            lon, lat = proj.to_lonlat(x1 + vx * i * dt, y1 + vy * i * dt)
            out.append(PredictedPoint(t + i * dt, lon, lat, fixes[-1].alt + vz * i * dt))
        return out

    # -- pattern-matching mode -----------------------------------------------------

    def _pattern_predict(self, fixes: list[PositionFix], k: int, dt: float) -> list[PredictedPoint]:
        """Fit the primitive library; predict with the best in-sample fit."""
        candidates: list[tuple[float, list[PredictedPoint]]] = []
        linear = self._linear_predict(fixes, k, dt)
        candidates.append((self._holdout_residual_linear(fixes), linear))
        for order in range(2, self.f + 1):
            rmf = RMFPredictor(f=order, window=max(2 * order, len(fixes)))
            for fix in fixes:
                rmf.observe(fix)
            if not rmf.ready():
                continue
            residual = self._holdout_residual_rmf(fixes, order)
            try:
                candidates.append((residual, rmf.predict(k, step_s=dt)))
            except (RuntimeError, np.linalg.LinAlgError):
                continue
        candidates.sort(key=lambda c: c[0])
        best = candidates[0][1]
        # Plausibility guard: an unstable recursion can diverge wildly when
        # iterated k steps. If the chosen primitive implies a speed far above
        # anything recently observed, fall back to linear extrapolation.
        recent_speed = max((p.speed or 0.0) for p in fixes[-4:])
        limit = max(3.0 * recent_speed, 50.0) * dt * k
        last = fixes[-1]
        proj = LocalProjection(last.lon, last.lat)
        end_x, end_y = proj.to_xy(best[-1].lon, best[-1].lat)
        if math.hypot(end_x, end_y) > limit:
            return linear
        return best

    @staticmethod
    def _holdout_residual_linear(fixes: list[PositionFix]) -> float:
        """One-step-back residual of constant-velocity extrapolation."""
        if len(fixes) < 3:
            return math.inf
        past, target = fixes[:-1], fixes[-1]
        dt = target.t - past[-1].t
        pred = RMFStarPredictor._linear_predict(past, 1, dt)[0]
        proj = LocalProjection(target.lon, target.lat)
        x, y = proj.to_xy(pred.lon, pred.lat)
        return math.hypot(x, y)

    @staticmethod
    def _holdout_residual_rmf(fixes: list[PositionFix], order: int) -> float:
        """One-step-back residual of an order-``order`` RMF fit."""
        if len(fixes) < 2 * order + 2:
            return math.inf
        past, target = fixes[:-1], fixes[-1]
        rmf = RMFPredictor(f=order, window=len(past))
        for fix in past:
            rmf.observe(fix)
        if not rmf.ready():
            return math.inf
        try:
            pred = rmf.predict(1, step_s=target.t - past[-1].t)[0]
        except (RuntimeError, np.linalg.LinAlgError):
            return math.inf
        proj = LocalProjection(target.lon, target.lat)
        x, y = proj.to_xy(pred.lon, pred.lat)
        return math.hypot(x, y)
