"""The Hybrid Clustering/HMM trajectory predictor (Section 5, Figure 5b).

The two-stage rationale of the paper:

1. **Clustering** — partition the historic enriched trajectories with
   SemT-OPTICS under a semantic-aware ERP distance, so each cluster is a
   coherent route/behaviour family, and keep each cluster's **medoid**
   as its reference-point skeleton.
2. **Per-cluster HMM** — for each cluster, train a
   :class:`~repro.prediction.hmm.DeviationHMM` on the members'
   per-waypoint deviations and enrichment covariates.

Prediction for a new flight: select the model of the nearest cluster
(by ERP distance to the medoids), decode the flight's covariates with
Viterbi, and emit the predicted per-waypoint deviations — which, applied
to the flight plan, give the full predicted trajectory. Accuracy is
evaluated as per-waypoint RMSE; resources as total model parameters —
the two axes of the paper's comparison against the "blind" HMM.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

from .clustering import OpticsResult, semt_optics
from .distances import flight_distance
from .evaluation import waypoint_rmse
from .features import FlightFeatures
from .hmm import DeviationBins, DeviationHMM


@dataclass
class HybridModelReport:
    """Training accounting (resource axis of the Figure 5b comparison)."""

    n_training_flights: int = 0
    n_clusters: int = 0
    n_noise: int = 0
    total_parameters: int = 0
    train_seconds: float = 0.0


class HybridClusteringHMM:
    """The full hybrid TP model."""

    def __init__(
        self,
        bins: DeviationBins | None = None,
        cluster_threshold_km: float = 25.0,
        min_pts: int = 3,
        min_cluster_size: int = 3,
        semantic_weight: float = 0.05,
    ):
        self.bins = bins or DeviationBins(limit_m=4000.0, n_bins=17)
        self.cluster_threshold_km = cluster_threshold_km
        self.min_pts = min_pts
        self.min_cluster_size = min_cluster_size
        self.semantic_weight = semantic_weight
        self._models: dict[int, DeviationHMM] = {}
        self._medoids: dict[int, FlightFeatures] = {}
        self._fallback: DeviationHMM | None = None
        self.clustering: OpticsResult | None = None
        self.report = HybridModelReport()

    def _distance(self, a: FlightFeatures, b: FlightFeatures) -> float:
        return flight_distance(a, b, semantic_weight=self.semantic_weight)

    def fit(self, flights: Sequence[FlightFeatures]) -> HybridModelReport:
        """Cluster the corpus and train one deviation HMM per cluster."""
        if not flights:
            raise ValueError("cannot fit on an empty corpus")
        start = time.perf_counter()
        self.clustering = semt_optics(
            flights,
            self._distance,
            threshold=self.cluster_threshold_km,
            min_pts=self.min_pts,
            min_cluster_size=self.min_cluster_size,
        )
        n_cov = len(flights[0].points[0].covariates) if flights[0].points else 1
        self._models.clear()
        self._medoids.clear()
        for cluster_id, medoid_idx in self.clustering.medoids.items():
            members = [flights[i] for i in self.clustering.members(cluster_id)]
            model = DeviationHMM(self.bins, n_cov)
            model.fit(
                [list(m.deviations_m) for m in members],
                [[list(p.covariates) for p in m.points] for m in members],
            )
            self._models[cluster_id] = model
            self._medoids[cluster_id] = flights[medoid_idx]
        # Fallback model over everything, for flights landing in no cluster.
        self._fallback = DeviationHMM(self.bins, n_cov)
        self._fallback.fit(
            [list(m.deviations_m) for m in flights],
            [[list(p.covariates) for p in m.points] for m in flights],
        )
        self.report = HybridModelReport(
            n_training_flights=len(flights),
            n_clusters=len(self._models),
            n_noise=sum(1 for lbl in self.clustering.labels if lbl < 0),
            total_parameters=sum(m.parameter_count() for m in self._models.values()),
            train_seconds=time.perf_counter() - start,
        )
        return self.report

    def select_cluster(self, flight: FlightFeatures) -> int | None:
        """The nearest cluster (by medoid ERP distance), or None."""
        if not self._medoids:
            return None
        best_id, best_d = None, math.inf
        for cluster_id, medoid in self._medoids.items():
            d = self._distance(flight, medoid)
            if d < best_d:
                best_id, best_d = cluster_id, d
        return best_id

    def predict_deviations(self, flight: FlightFeatures) -> list[float]:
        """Predicted signed per-waypoint deviations for a new flight."""
        if self._fallback is None:
            raise RuntimeError("model is not fitted")
        covariates = [list(p.covariates) for p in flight.points]
        cluster_id = self.select_cluster(flight)
        model = self._models.get(cluster_id, self._fallback) if cluster_id is not None else self._fallback
        return model.predict_deviations(covariates)

    def evaluate(self, flights: Sequence[FlightFeatures]) -> "HybridEvaluation":
        """Per-flight and pooled waypoint RMSE on held-out flights."""
        per_flight: dict[str, float] = {}
        all_pred: list[float] = []
        all_true: list[float] = []
        for flight in flights:
            predicted = self.predict_deviations(flight)
            per_flight[flight.flight_id] = waypoint_rmse(predicted, list(flight.deviations_m))
            all_pred.extend(predicted)
            all_true.extend(flight.deviations_m)
        pooled = waypoint_rmse(all_pred, all_true) if all_pred else math.nan
        return HybridEvaluation(per_flight=per_flight, pooled_rmse_m=pooled)


@dataclass
class HybridEvaluation:
    """Evaluation outputs of the hybrid model."""

    per_flight: dict[str, float]
    pooled_rmse_m: float

    def rmse_range(self) -> tuple[float, float]:
        """(best, worst) per-flight RMSE — the paper quotes a 183..736 m band."""
        values = sorted(self.per_flight.values())
        if not values:
            return (math.nan, math.nan)
        return values[0], values[-1]
