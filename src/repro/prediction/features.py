"""Enriched reference points and per-waypoint deviation extraction (Section 5).

The datAcron TP approach is *semantic-aware*: instead of raw position
streams it works on **reference points** (flight-plan waypoints) enriched
with the covariates that drive deviations — local weather, aircraft
size, seasonal/time factors. This module extracts those features from
simulated flights: the signed lateral deviation of the actual track at
each waypoint, together with the enrichment vector the predictors learn
from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..datasources.aviation import SimulatedFlight
from ..geo import LocalProjection


@dataclass(frozen=True, slots=True)
class EnrichedPoint:
    """One reference point enriched with covariates."""

    lon: float
    lat: float
    alt: float
    t: float
    covariates: tuple[float, ...]


@dataclass(frozen=True, slots=True)
class FlightFeatures:
    """The TP view of one flight: reference points, deviations, covariates."""

    flight_id: str
    route_key: str                    # departure-arrival pair
    variant: int                      # ground-truth route variant (evaluation only)
    points: tuple[EnrichedPoint, ...]
    deviations_m: tuple[float, ...]   # signed lateral deviation at each waypoint
    size_class: str
    hour_of_day: float

    def __len__(self) -> int:
        return len(self.points)


def signed_waypoint_deviations(flight: SimulatedFlight) -> list[float]:
    """Signed lateral deviation (m) of the actual track at each plan waypoint.

    Positive = left of track (same convention as the simulator's offset).
    The deviation at a waypoint is measured from the actual fix nearest (in
    the plan's local frame) to the waypoint, projected on the local track
    normal.
    """
    plan = flight.plan
    path = plan.lateral_path()
    proj = LocalProjection(path[0][0], path[0][1])
    path_xy = [proj.to_xy(lon, lat) for lon, lat in path]
    actual_xy = [proj.to_xy(f.lon, f.lat) for f in flight.trajectory]
    deviations: list[float] = []
    for wp_index, waypoint in enumerate(plan.waypoints):
        wx, wy = proj.to_xy(waypoint.lon, waypoint.lat)
        # Track tangent at the waypoint: direction between surrounding path nodes.
        a = path_xy[wp_index]       # previous path node (waypoint k has path index k+1)
        b = path_xy[min(wp_index + 2, len(path_xy) - 1)]
        tx, ty = b[0] - a[0], b[1] - a[1]
        norm = math.hypot(tx, ty) or 1.0
        nx, ny = -ty / norm, tx / norm
        # Nearest actual sample to the waypoint.
        best = min(actual_xy, key=lambda p: (p[0] - wx) ** 2 + (p[1] - wy) ** 2)
        deviations.append((best[0] - wx) * nx + (best[1] - wy) * ny)
    return deviations


_SIZE_CODE = {"light": 1.6, "medium": 1.0, "heavy": 0.7}


def extract_features(flight: SimulatedFlight) -> FlightFeatures:
    """Build the enriched-reference-point view of a simulated flight."""
    plan = flight.plan
    deviations = signed_waypoint_deviations(flight)
    hour = (plan.scheduled_departure / 3600.0) % 24.0
    size_code = _SIZE_CODE.get(flight.aircraft.size_class, 1.0)
    points = []
    for wp, crosswind in zip(plan.waypoints, flight.crosswinds_at_waypoints):
        points.append(
            EnrichedPoint(
                lon=wp.lon,
                lat=wp.lat,
                alt=wp.alt_m,
                t=plan.scheduled_departure,
                covariates=(crosswind, size_code, hour),
            )
        )
    return FlightFeatures(
        flight_id=plan.flight_id,
        route_key=f"{plan.departure.code}-{plan.arrival.code}",
        variant=plan.route_variant,
        points=tuple(points),
        deviations_m=tuple(deviations),
        size_class=flight.aircraft.size_class,
        hour_of_day=hour,
    )


def features_dataset(flights: list[SimulatedFlight]) -> list[FlightFeatures]:
    """Extract features for a whole flight corpus."""
    return [extract_features(f) for f in flights]
