"""Trajectory similarity: ERP with a semantic (enrichment) component.

The SemT-OPTICS clustering of Section 5 decomposes the similarity of two
enriched points into a spatio-temporal part and an enrichment part,
combining them with an Edit-distance-with-Real-Penalty (ERP, the paper's
[10]) variant over the point sequences. ERP is a proper metric (unlike
DTW) because gaps are charged against a *fixed* reference value ``g``:
with a metric ground distance and a constant ``g``, ERP satisfies the
triangle inequality and is symmetric.

All distances are computed in a fixed global equirectangular frame (a
constant linear map of lon/lat degrees to kilometres), so the ground
distance is the same metric for every pair — a requirement for using
ERP inside OPTICS.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..geo.units import metres_per_degree_lat

from .features import EnrichedPoint

#: Kilometres per degree in the fixed frame (equator-scaled equirectangular).
_KM_PER_DEG = metres_per_degree_lat() / 1000.0

#: The fixed ERP gap reference point: the lon/lat origin.
_G_LON, _G_LAT = 0.0, 0.0


def _spatial_km(a_lon: float, a_lat: float, b_lon: float, b_lat: float) -> float:
    """Ground metric: scaled Euclidean distance on lon/lat, in km."""
    return math.hypot(a_lon - b_lon, a_lat - b_lat) * _KM_PER_DEG


def point_distance(
    a: EnrichedPoint,
    b: EnrichedPoint,
    spatial_weight: float = 1.0,
    semantic_weight: float = 0.0,
) -> float:
    """Weighted spatial + enrichment distance between two enriched points.

    The spatial part is the fixed-frame distance in km; the semantic part
    is the Euclidean distance of the covariate vectors.
    """
    spatial = _spatial_km(a.lon, a.lat, b.lon, b.lat)
    semantic = 0.0
    if semantic_weight > 0.0 and a.covariates and b.covariates:
        n = min(len(a.covariates), len(b.covariates))
        semantic = math.sqrt(sum((a.covariates[i] - b.covariates[i]) ** 2 for i in range(n)))
    return spatial_weight * spatial + semantic_weight * semantic


def _gap_cost(p: EnrichedPoint, spatial_weight: float, semantic_weight: float) -> float:
    """ERP gap penalty: full distance of the point to the fixed reference g.

    The reference carries zero covariates, so a gap also pays the semantic
    norm of the dropped point (keeps the metric property in the combined
    space).
    """
    cost = spatial_weight * _spatial_km(p.lon, p.lat, _G_LON, _G_LAT)
    if semantic_weight > 0.0 and p.covariates:
        cost += semantic_weight * math.sqrt(sum(c * c for c in p.covariates))
    return cost


def erp_distance(
    seq_a: Sequence[EnrichedPoint],
    seq_b: Sequence[EnrichedPoint],
    spatial_weight: float = 1.0,
    semantic_weight: float = 0.0,
) -> float:
    """ERP distance between two enriched point sequences.

    O(len(a) * len(b)) dynamic program. Empty-vs-empty is 0; empty-vs-X is
    the total gap cost of X.
    """
    n, m = len(seq_a), len(seq_b)
    prev = [0.0] * (m + 1)
    for j in range(1, m + 1):
        prev[j] = prev[j - 1] + _gap_cost(seq_b[j - 1], spatial_weight, semantic_weight)
    for i in range(1, n + 1):
        gap_a_cost = _gap_cost(seq_a[i - 1], spatial_weight, semantic_weight)
        cur = [prev[0] + gap_a_cost] + [0.0] * m
        for j in range(1, m + 1):
            match = prev[j - 1] + point_distance(seq_a[i - 1], seq_b[j - 1], spatial_weight, semantic_weight)
            gap_a = prev[j] + gap_a_cost
            gap_b = cur[j - 1] + _gap_cost(seq_b[j - 1], spatial_weight, semantic_weight)
            cur[j] = min(match, gap_a, gap_b)
        prev = cur
    return prev[m]


def flight_distance(a, b, spatial_weight: float = 1.0, semantic_weight: float = 0.05) -> float:
    """ERP distance between two flights' enriched reference points."""
    return erp_distance(a.points, b.points, spatial_weight, semantic_weight)
