"""Hidden Markov Models over reference points (Section 5).

A Gaussian-emission HMM with supervised training: the hybrid TP method
quantizes per-waypoint deviations into hidden states, extracts
transition statistics by counting over historic flights (the paper:
probabilities "typically extracted by analyzing historic data") and
models the enrichment covariates as state-conditional Gaussian
emissions. Decoding a new flight's covariate sequence with Viterbi
yields the most likely deviation-state sequence — i.e. the predicted
deviations from the flight plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

_LOG_EPS = 1e-12


class GaussianHMM:
    """Discrete-state HMM with diagonal-Gaussian emissions."""

    def __init__(self, n_states: int, n_dims: int):
        if n_states < 1 or n_dims < 1:
            raise ValueError("need at least one state and one dimension")
        self.n_states = n_states
        self.n_dims = n_dims
        self.initial = np.full(n_states, 1.0 / n_states)
        self.transitions = np.full((n_states, n_states), 1.0 / n_states)
        self.means = np.zeros((n_states, n_dims))
        self.variances = np.ones((n_states, n_dims))

    # -- supervised training ----------------------------------------------------

    def fit_supervised(
        self,
        state_sequences: Sequence[Sequence[int]],
        observation_sequences: Sequence[Sequence[Sequence[float]]],
        smoothing: float = 1.0,
    ) -> None:
        """Count-based fit from labelled sequences (with Laplace smoothing)."""
        if len(state_sequences) != len(observation_sequences):
            raise ValueError("state and observation sequence counts differ")
        n = self.n_states
        init_counts = np.full(n, smoothing)
        trans_counts = np.full((n, n), smoothing)
        obs_by_state: list[list[np.ndarray]] = [[] for _ in range(n)]
        for states, observations in zip(state_sequences, observation_sequences):
            if len(states) != len(observations):
                raise ValueError("sequence length mismatch")
            if not states:
                continue
            init_counts[states[0]] += 1.0
            for a, b in zip(states, states[1:]):
                trans_counts[a][b] += 1.0
            for s, obs in zip(states, observations):
                obs_by_state[s].append(np.asarray(obs, dtype=float))
        self.initial = init_counts / init_counts.sum()
        self.transitions = trans_counts / trans_counts.sum(axis=1, keepdims=True)
        for s in range(n):
            if obs_by_state[s]:
                stacked = np.stack(obs_by_state[s])
                self.means[s] = stacked.mean(axis=0)
                self.variances[s] = np.maximum(stacked.var(axis=0), 1e-6)
            # States never observed keep the neutral prior (zero-mean, unit var).

    # -- inference ---------------------------------------------------------------

    def _log_emission(self, obs: np.ndarray) -> np.ndarray:
        """log p(obs | state) for every state (diagonal Gaussian)."""
        diff = obs[None, :] - self.means
        log_det = np.log(2.0 * math.pi * self.variances).sum(axis=1)
        mahal = (diff * diff / self.variances).sum(axis=1)
        return -0.5 * (log_det + mahal)

    def viterbi(self, observations: Sequence[Sequence[float]]) -> list[int]:
        """The most likely hidden-state path for an observation sequence."""
        if not observations:
            return []
        obs = np.asarray(observations, dtype=float)
        T = len(obs)
        log_init = np.log(self.initial + _LOG_EPS)
        log_trans = np.log(self.transitions + _LOG_EPS)
        delta = log_init + self._log_emission(obs[0])
        back = np.zeros((T, self.n_states), dtype=int)
        for t in range(1, T):
            scores = delta[:, None] + log_trans
            back[t] = scores.argmax(axis=0)
            delta = scores.max(axis=0) + self._log_emission(obs[t])
        path = [int(delta.argmax())]
        for t in range(T - 1, 0, -1):
            path.append(int(back[t][path[-1]]))
        path.reverse()
        return path

    def log_likelihood(self, observations: Sequence[Sequence[float]]) -> float:
        """Forward-algorithm log p(observations)."""
        if not observations:
            return 0.0
        obs = np.asarray(observations, dtype=float)
        alpha = self.initial * np.exp(self._log_emission(obs[0]))
        total = 0.0
        for t in range(len(obs)):
            if t > 0:
                alpha = (alpha @ self.transitions) * np.exp(self._log_emission(obs[t]))
            norm = alpha.sum()
            if norm <= 0:
                return -math.inf
            total += math.log(norm)
            alpha = alpha / norm
        return total

    def parameter_count(self) -> int:
        """Free parameters: the resource-consumption metric of the comparison."""
        return (
            self.n_states                      # initial
            + self.n_states * self.n_states    # transitions
            + 2 * self.n_states * self.n_dims  # means + variances
        )


@dataclass(frozen=True, slots=True)
class DeviationBins:
    """Uniform quantization of signed deviations into HMM states."""

    limit_m: float
    n_bins: int

    def __post_init__(self):
        if self.n_bins < 2 or self.limit_m <= 0:
            raise ValueError("need n_bins >= 2 and a positive limit")

    def state_of(self, deviation_m: float) -> int:
        """The bin index of a deviation (clamped to the limits)."""
        clamped = min(max(deviation_m, -self.limit_m), self.limit_m)
        frac = (clamped + self.limit_m) / (2.0 * self.limit_m)
        return min(self.n_bins - 1, int(frac * self.n_bins))

    def center_of(self, state: int) -> float:
        """The representative deviation of a bin."""
        if not 0 <= state < self.n_bins:
            raise ValueError(f"state {state} out of range")
        width = 2.0 * self.limit_m / self.n_bins
        return -self.limit_m + (state + 0.5) * width


class DeviationHMM:
    """An HMM over quantized per-waypoint deviations with covariate emissions."""

    def __init__(self, bins: DeviationBins, n_covariates: int):
        self.bins = bins
        self.hmm = GaussianHMM(bins.n_bins, n_covariates)

    def fit(self, deviation_seqs: Sequence[Sequence[float]], covariate_seqs: Sequence[Sequence[Sequence[float]]]) -> None:
        """Supervised fit from historic (deviation, covariate) sequences."""
        state_seqs = [[self.bins.state_of(d) for d in seq] for seq in deviation_seqs]
        self.hmm.fit_supervised(state_seqs, covariate_seqs)

    def predict_deviations(self, covariates: Sequence[Sequence[float]]) -> list[float]:
        """Predicted signed deviation per waypoint for a new flight."""
        path = self.hmm.viterbi(covariates)
        return [self.bins.center_of(s) for s in path]

    def parameter_count(self) -> int:
        return self.hmm.parameter_count()
