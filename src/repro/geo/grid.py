"""Equi-grid spatial partitioning.

The paper uses equi-grids in two places:

* link discovery (Section 4.2.4) organizes entities by space partitioning
  into an equi-grid, with per-cell "masks" that prune refinement work, and
* the knowledge-graph store (Section 4.2.5) encodes the approximate
  position of an entity as the integer id of the spatio-temporal cell it
  falls into.

Both are backed by this module: a uniform lon/lat grid over a bounding
box, with stable integer cell ids, neighbourhood queries, and polygon
rasterization (the set of cells a polygon overlaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from . import kernels
from .geometry import BBox, Polygon
from .units import metres_per_degree_lat, metres_per_degree_lon


@dataclass(frozen=True, slots=True)
class Cell:
    """A single grid cell, addressed by (col, row) with a stable integer id."""

    col: int
    row: int
    cell_id: int
    box: BBox


class EquiGrid:
    """A uniform grid over a geographic bounding box.

    Cell ids are row-major integers: ``cell_id = row * cols + col``. Points
    outside the bounding box are clamped to the border cells, which mirrors
    how streaming surveillance systems treat slightly out-of-area fixes.
    """

    def __init__(self, bbox: BBox, cols: int, rows: int):
        if cols < 1 or rows < 1:
            raise ValueError("grid must have at least one column and one row")
        self.bbox = bbox
        self.cols = cols
        self.rows = rows
        self._dx = bbox.width / cols
        self._dy = bbox.height / rows
        if self._dx <= 0 or self._dy <= 0:
            raise ValueError("grid over a zero-extent bbox")

    @classmethod
    def with_cell_size(cls, bbox: BBox, cell_deg: float) -> "EquiGrid":
        """Build a grid whose cells are approximately ``cell_deg`` degrees wide."""
        if cell_deg <= 0:
            raise ValueError("cell size must be positive")
        cols = max(1, round(bbox.width / cell_deg))
        rows = max(1, round(bbox.height / cell_deg))
        return cls(bbox, cols, rows)

    def __len__(self) -> int:
        return self.cols * self.rows

    def __repr__(self) -> str:
        return f"EquiGrid({self.cols}x{self.rows} over {self.bbox})"

    def cell_size_m(self) -> tuple[float, float]:
        """Approximate (width, height) of a cell in metres at the bbox centre."""
        lat = self.bbox.center[1]
        return self._dx * metres_per_degree_lon(lat), self._dy * metres_per_degree_lat()

    def locate(self, lon: float, lat: float) -> tuple[int, int]:
        """The (col, row) of the cell containing the point (clamped to grid)."""
        col = int((lon - self.bbox.min_lon) / self._dx)
        row = int((lat - self.bbox.min_lat) / self._dy)
        return min(max(col, 0), self.cols - 1), min(max(row, 0), self.rows - 1)

    def cell_id(self, lon: float, lat: float) -> int:
        """The integer id of the cell containing the point."""
        col, row = self.locate(lon, lat)
        return row * self.cols + col

    def locate_batch(self, lons, lats) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`locate`: (col, row) int64 arrays, clamped.

        Truncation uses ``astype(int64)`` (toward zero) to match the
        scalar ``int()`` exactly, including for out-of-grid fixes whose
        pre-clamp index is negative.
        """
        lon, lat = kernels.as_lonlat(lons, lats)
        col = ((lon - self.bbox.min_lon) / self._dx).astype(np.int64)
        row = ((lat - self.bbox.min_lat) / self._dy).astype(np.int64)
        np.clip(col, 0, self.cols - 1, out=col)
        np.clip(row, 0, self.rows - 1, out=row)
        return col, row

    def cell_ids_batch(self, lons, lats) -> np.ndarray:
        """Vectorized :meth:`cell_id`; bit-for-bit twin of the scalar path."""
        col, row = self.locate_batch(lons, lats)
        return row * self.cols + col

    def cell_of_id(self, cell_id: int) -> Cell:
        """Materialize a Cell from its integer id."""
        if not 0 <= cell_id < len(self):
            raise ValueError(f"cell id {cell_id} out of range [0, {len(self)})")
        row, col = divmod(cell_id, self.cols)
        return Cell(col, row, cell_id, self.cell_box(col, row))

    def cell_box(self, col: int, row: int) -> BBox:
        """The bounding box of cell (col, row)."""
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise ValueError(f"cell ({col},{row}) out of range")
        min_lon = self.bbox.min_lon + col * self._dx
        min_lat = self.bbox.min_lat + row * self._dy
        return BBox(min_lon, min_lat, min_lon + self._dx, min_lat + self._dy)

    def neighbours(self, col: int, row: int, radius: int = 1) -> Iterator[tuple[int, int]]:
        """Yield the (col, row) of cells within Chebyshev ``radius`` (self included)."""
        for r in range(max(0, row - radius), min(self.rows, row + radius + 1)):
            for c in range(max(0, col - radius), min(self.cols, col + radius + 1)):
                yield c, r

    def neighbour_ids(self, cell_id: int, radius: int = 1) -> list[int]:
        """Neighbour cell ids (self included) within Chebyshev ``radius``."""
        row, col = divmod(cell_id, self.cols)
        return [r * self.cols + c for c, r in self.neighbours(col, row, radius)]

    def cells_overlapping_bbox(self, box: BBox) -> Iterator[tuple[int, int]]:
        """All (col, row) whose cell box intersects the given bbox.

        A box disjoint from the grid extent overlaps nothing: without this
        check, the clamping in :meth:`locate` would map an out-of-area
        query onto border cells and fabricate phantom overlaps.
        """
        if not self.bbox.intersects(box):
            return
        c0, r0 = self.locate(box.min_lon, box.min_lat)
        c1, r1 = self.locate(box.max_lon, box.max_lat)
        for row in range(r0, r1 + 1):
            for col in range(c0, c1 + 1):
                yield col, row

    def rasterize_polygon(self, polygon: Polygon, vectorized: bool = True) -> list[int]:
        """Ids of all cells whose box intersects the polygon.

        Used by link discovery to assign stationary regions to blocks and to
        build cell masks, and by the KG store to index region geometries.
        The vectorized path evaluates the same cell-box intersection stages
        (vertex-in-box, corner-in-polygon, edge-crossing) over all candidate
        cells at once; the scalar per-cell loop is kept as the equivalence
        oracle (``vectorized=False``) and returns the identical id list.
        """
        if not vectorized:
            hits: list[int] = []
            for col, row in self.cells_overlapping_bbox(polygon.bbox):
                if polygon.intersects_bbox(self.cell_box(col, row)):
                    hits.append(row * self.cols + col)
            return hits
        return self._rasterize_polygon_batch(polygon)

    def _rasterize_polygon_batch(self, polygon: Polygon) -> list[int]:
        """Numpy twin of the per-cell ``intersects_bbox`` rasterization loop.

        Every stage mirrors the scalar predicate's arithmetic exactly
        (pure products and comparisons), so the surviving cell ids equal
        the scalar path's bit-for-bit, in the same row-major order.
        """
        if not self.bbox.intersects(polygon.bbox):
            return []
        c0, r0 = self.locate(polygon.bbox.min_lon, polygon.bbox.min_lat)
        c1, r1 = self.locate(polygon.bbox.max_lon, polygon.bbox.max_lat)
        cols = np.arange(c0, c1 + 1, dtype=np.int64)
        rows = np.arange(r0, r1 + 1, dtype=np.int64)
        # Row-major candidate cells, matching cells_overlapping_bbox order.
        col = np.tile(cols, rows.size)
        row = np.repeat(rows, cols.size)
        box_min_lon = self.bbox.min_lon + col * self._dx
        box_min_lat = self.bbox.min_lat + row * self._dy
        box_max_lon = box_min_lon + self._dx
        box_max_lat = box_min_lat + self._dy

        verts = np.asarray(polygon.vertices, dtype=np.float64)
        vx, vy = verts[:, 0], verts[:, 1]
        pb = polygon.bbox
        # Stage 0: polygon bbox vs cell box (cells_overlapping_bbox makes
        # this vacuously true, but the scalar twin evaluates it, so we do).
        hit = ~(
            (pb.min_lon > box_max_lon)
            | (pb.max_lon < box_min_lon)
            | (pb.min_lat > box_max_lat)
            | (pb.max_lat < box_min_lat)
        )
        # Stage 1: any polygon vertex inside the cell box.
        undecided = np.flatnonzero(hit)
        in_box = (
            (box_min_lon[undecided, None] <= vx)
            & (vx <= box_max_lon[undecided, None])
            & (box_min_lat[undecided, None] <= vy)
            & (vy <= box_max_lat[undecided, None])
        ).any(axis=1)
        decided_hit = np.zeros(hit.shape, dtype=bool)
        decided_hit[undecided[in_box]] = True
        undecided = undecided[~in_box]
        # Stage 2: any cell corner inside the polygon.
        if undecided.size:
            cor_lon = np.stack(
                [box_min_lon[undecided], box_min_lon[undecided], box_max_lon[undecided], box_max_lon[undecided]],
                axis=1,
            )
            cor_lat = np.stack(
                [box_min_lat[undecided], box_max_lat[undecided], box_min_lat[undecided], box_max_lat[undecided]],
                axis=1,
            )
            corner_in = polygon.contains_batch(cor_lon.ravel(), cor_lat.ravel()).reshape(-1, 4).any(axis=1)
            decided_hit[undecided[corner_in]] = True
            undecided = undecided[~corner_in]
        # Stage 3: any polygon edge crossing a cell-box edge.
        if undecided.size:
            crossing = self._box_edges_cross_polygon(
                polygon,
                box_min_lon[undecided],
                box_min_lat[undecided],
                box_max_lon[undecided],
                box_max_lat[undecided],
            )
            decided_hit[undecided[crossing]] = True
        ids = row * self.cols + col
        return [int(i) for i in ids[hit & decided_hit]]

    @staticmethod
    def _box_edges_cross_polygon(
        polygon: Polygon,
        min_lon: np.ndarray,
        min_lat: np.ndarray,
        max_lon: np.ndarray,
        max_lat: np.ndarray,
    ) -> np.ndarray:
        """Whether any polygon edge intersects any edge of each box.

        Vectorized twin of ``geometry.segments_intersect`` over the
        (box-edge x polygon-edge) cross product: identical orientation
        products, proper-crossing test and collinear on-segment checks.
        """
        verts = np.asarray(polygon.vertices, dtype=np.float64)
        ax, ay = verts[:, 0], verts[:, 1]
        bx, by = np.roll(ax, -1), np.roll(ay, -1)
        # The four box edges, in the scalar twin's corner order.
        cx = np.stack([min_lon, min_lon, max_lon, max_lon], axis=1).reshape(-1, 1)
        cy = np.stack([min_lat, max_lat, max_lat, min_lat], axis=1).reshape(-1, 1)
        dx = np.stack([min_lon, max_lon, max_lon, min_lon], axis=1).reshape(-1, 1)
        dy = np.stack([max_lat, max_lat, min_lat, min_lat], axis=1).reshape(-1, 1)
        # Orientation products, matching geometry._orient operand order.
        d1 = (dx - cx) * (ay - cy) - (dy - cy) * (ax - cx)
        d2 = (dx - cx) * (by - cy) - (dy - cy) * (bx - cx)
        d3 = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
        d4 = (bx - ax) * (dy - ay) - (by - ay) * (dx - ax)
        proper = (((d1 > 0) & (d2 < 0)) | ((d1 < 0) & (d2 > 0))) & (
            ((d3 > 0) & (d4 < 0)) | ((d3 < 0) & (d4 > 0))
        )
        lo_x, hi_x = np.minimum(cx, dx), np.maximum(cx, dx)
        lo_y, hi_y = np.minimum(cy, dy), np.maximum(cy, dy)
        on_cd_a = (lo_x <= ax) & (ax <= hi_x) & (lo_y <= ay) & (ay <= hi_y)
        on_cd_b = (lo_x <= bx) & (bx <= hi_x) & (lo_y <= by) & (by <= hi_y)
        plo_x, phi_x = np.minimum(ax, bx), np.maximum(ax, bx)
        plo_y, phi_y = np.minimum(ay, by), np.maximum(ay, by)
        on_ab_c = (plo_x <= cx) & (cx <= phi_x) & (plo_y <= cy) & (cy <= phi_y)
        on_ab_d = (plo_x <= dx) & (dx <= phi_x) & (plo_y <= dy) & (dy <= phi_y)
        touch = (
            ((d1 == 0) & on_cd_a)
            | ((d2 == 0) & on_cd_b)
            | ((d3 == 0) & on_ab_c)
            | ((d4 == 0) & on_ab_d)
        )
        return (proper | touch).any(axis=1).reshape(-1, 4).any(axis=1)

    def radius_to_cells(self, radius_m: float) -> int:
        """How many cell rings are needed to cover a metre radius.

        Conservative: uses the smaller cell dimension so that a
        ``radius_m`` ball around any point in a cell is fully covered by
        the returned Chebyshev radius of cells.
        """
        if radius_m <= 0:
            return 0
        w_m, h_m = self.cell_size_m()
        smallest = max(1e-9, min(w_m, h_m))
        return int(radius_m / smallest) + 1


class SpatioTemporalGrid:
    """A 3-D (lon, lat, time) partitioning built on an EquiGrid.

    This backs the KG store's dictionary encoding (Section 4.2.5): the
    approximate position of a moving entity becomes a single integer —
    the id of the spatio-temporal cell it occupies — so that range
    constraints can be evaluated on encoded ids without touching the
    underlying geometry literals.
    """

    def __init__(self, grid: EquiGrid, t_origin: float, t_step_s: float, t_slots: int):
        if t_step_s <= 0:
            raise ValueError("temporal step must be positive")
        if t_slots < 1:
            raise ValueError("need at least one temporal slot")
        self.grid = grid
        self.t_origin = t_origin
        self.t_step_s = t_step_s
        self.t_slots = t_slots

    def __len__(self) -> int:
        return len(self.grid) * self.t_slots

    def t_slot(self, t: float) -> int:
        """The temporal slot index of timestamp ``t`` (clamped)."""
        slot = int((t - self.t_origin) / self.t_step_s)
        return min(max(slot, 0), self.t_slots - 1)

    def cell_id(self, lon: float, lat: float, t: float) -> int:
        """The spatio-temporal cell id of a (lon, lat, t) sample."""
        return self.t_slot(t) * len(self.grid) + self.grid.cell_id(lon, lat)

    def decompose(self, st_id: int) -> tuple[int, int]:
        """Split a spatio-temporal id into (t_slot, spatial_cell_id)."""
        if not 0 <= st_id < len(self):
            raise ValueError(f"st cell id {st_id} out of range")
        return divmod(st_id, len(self.grid))

    def ids_for_range(self, box: BBox, t_min: float, t_max: float) -> set[int]:
        """All spatio-temporal cell ids overlapping a (bbox, time-interval) range."""
        if t_max < t_min:
            raise ValueError("t_max must be >= t_min")
        spatial = [row * self.grid.cols + col for col, row in self.grid.cells_overlapping_bbox(box)]
        s0, s1 = self.t_slot(t_min), self.t_slot(t_max)
        n = len(self.grid)
        return {slot * n + cell for slot in range(s0, s1 + 1) for cell in spatial}
