"""Numpy batch kernels for the geo layer (the vectorized fast path).

The paper's E4 experiment (Section 4.2.4) is throughput-bound on
geometric predicates: haversine distances, point-in-polygon refinement,
grid assignment. The scalar implementations in :mod:`.geometry`,
:mod:`.grid` and :mod:`.trajectory` stay the readable source of truth —
and the *equivalence oracle* the dual-path reprolint checker enforces —
while the functions here evaluate the same formulas over whole
coordinate arrays in one numpy pass.

Parity contract (what "equivalent" means, kernel by kernel)
-----------------------------------------------------------
* **Pure-arithmetic predicates are bit-for-bit.** Point-in-ring
  (even-odd), bbox containment, grid cell assignment and mask sub-cell
  lookup use only ``+ - * /``, comparisons and truncation; every
  expression here mirrors the scalar operation order, so the verdicts
  are identical down to the last ulp on every platform.
* **Transcendental kernels are last-ulp equivalent.** ``np.arcsin`` /
  ``np.arctan2`` (and, on some SIMD builds, ``np.sin``/``np.cos``) may
  differ from the ``math`` module by one ulp, so haversine distances and
  bearings agree to ~1e-12 relative rather than exactly. Predicates
  *derived* from them (nearTo thresholds) are asserted equivalent on the
  benchmark workloads, where a last-ulp flip at the threshold does not
  occur.

Truncation convention: the scalar code indexes with ``int(x)``
(truncation toward zero); kernels mirror that with ``astype(int64)``,
never ``floor`` — the two differ for negative operands, and clamped
results must match the scalar path exactly.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .units import EARTH_RADIUS_M

__all__ = [
    "as_array",
    "as_lonlat",
    "haversine_m_batch",
    "heading_difference_batch",
    "initial_bearing_deg_batch",
    "normalize_heading_batch",
    "ring_contains_batch",
    "rings_to_arrays",
    "point_segment_distance_batch",
    "polygon_boundary_distance_m_batch",
]


def as_array(values: Iterable[float] | np.ndarray) -> np.ndarray:
    """Coerce a coordinate sequence to a contiguous float64 array."""
    return np.ascontiguousarray(values, dtype=np.float64)


def as_lonlat(
    lons: Iterable[float] | np.ndarray, lats: Iterable[float] | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Coerce paired lon/lat sequences to equal-shape float64 arrays."""
    lon = as_array(lons)
    lat = as_array(lats)
    if lon.shape != lat.shape:
        raise ValueError(f"lon/lat shape mismatch: {lon.shape} vs {lat.shape}")
    return lon, lat


# -- geodesics ---------------------------------------------------------------------


def haversine_m_batch(lon1, lat1, lon2, lat2) -> np.ndarray:
    """Great-circle distances in metres; broadcasting twin of ``haversine_m``.

    Mirrors the scalar formula (including the antipodal clamp) operation
    by operation; agrees with the scalar path to the last ulp of
    ``asin`` (see the module parity contract).
    """
    lon1, lat1 = np.asarray(lon1, np.float64), np.asarray(lat1, np.float64)
    lon2, lat2 = np.asarray(lon2, np.float64), np.asarray(lat2, np.float64)
    phi1 = lat1 * math.pi / 180.0
    phi2 = lat2 * math.pi / 180.0
    dphi = (lat2 - lat1) * math.pi / 180.0
    dlmb = (lon2 - lon1) * math.pi / 180.0
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlmb / 2.0) ** 2
    # Clamp for numerical safety near antipodal points (scalar twin does too).
    np.clip(a, 0.0, 1.0, out=a)
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(a))


def initial_bearing_deg_batch(lon1, lat1, lon2, lat2) -> np.ndarray:
    """Initial bearings in [0, 360); broadcasting twin of ``initial_bearing_deg``."""
    lon1, lat1 = np.asarray(lon1, np.float64), np.asarray(lat1, np.float64)
    lon2, lat2 = np.asarray(lon2, np.float64), np.asarray(lat2, np.float64)
    phi1 = lat1 * math.pi / 180.0
    phi2 = lat2 * math.pi / 180.0
    dlmb = (lon2 - lon1) * math.pi / 180.0
    y = np.sin(dlmb) * np.cos(phi2)
    x = np.cos(phi1) * np.sin(phi2) - np.sin(phi1) * np.cos(phi2) * np.cos(dlmb)
    deg = np.arctan2(y, x) * 180.0 / math.pi
    return np.where(deg < 0.0, deg + 360.0, deg)


# -- headings ----------------------------------------------------------------------


def normalize_heading_batch(degs) -> np.ndarray:
    """Headings normalized to [0, 360); bit-for-bit twin of ``units.normalize_heading``.

    ``np.fmod`` is the same C ``fmod`` the scalar path calls, so every
    branch (negative wrap, the ``>= 360`` rounding guard) matches exactly.
    """
    h = np.fmod(np.asarray(degs, np.float64), 360.0)
    h = np.where(h < 0.0, h + 360.0, h)
    return np.where(h >= 360.0, 0.0, h)


def heading_difference_batch(a, b) -> np.ndarray:
    """Smallest absolute angular differences in [0, 180]; twin of ``units.heading_difference``."""
    d = np.abs(normalize_heading_batch(a) - normalize_heading_batch(b))
    return np.where(d > 180.0, 360.0 - d, d)


# -- point-in-ring (even-odd, boundary-inclusive) ----------------------------------


def rings_to_arrays(
    rings: Sequence[Sequence[tuple[float, float]]],
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Precompute per-ring edge arrays ``(x1, y1, x2, y2)`` for the PIP kernel."""
    out = []
    for ring in rings:
        pts = np.asarray(ring, dtype=np.float64).reshape(-1, 2)
        x1, y1 = pts[:, 0], pts[:, 1]
        out.append((x1, y1, np.roll(x1, -1), np.roll(y1, -1)))
    return out


def ring_contains_batch(
    edges: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    lons: np.ndarray,
    lats: np.ndarray,
) -> np.ndarray:
    """Even-odd point-in-ring verdicts for all points against all edges.

    Bit-for-bit twin of ``geometry._ring_contains``: the crossing
    abscissa is evaluated with the identical expression, the on-vertex /
    on-edge shortcuts use the same exact comparisons, and the parity is
    the count of strict ``lon < x_cross`` crossings. Cost is
    O(edges x points) in one numpy pass.
    """
    x1, y1, x2, y2 = edges
    lon = lons[:, None]
    lat = lats[:, None]
    on_vertex = ((lon == x1) & (lat == y1)).any(axis=1)
    crosses = (y1 > lat) != (y2 > lat)
    with np.errstate(divide="ignore", invalid="ignore"):
        x_cross = x1 + (lat - y1) * (x2 - x1) / (y2 - y1)
    on_edge = (crosses & (np.abs(x_cross - lon) < 1e-15)).any(axis=1)
    parity = (crosses & (lon < x_cross)).sum(axis=1) & 1
    return on_vertex | on_edge | (parity == 1)


# -- point-to-segment distances ----------------------------------------------------


def point_segment_distance_batch(
    x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray
) -> np.ndarray:
    """Min distance from the origin to each of a set of segments, per row.

    Inputs are ``(P, E)`` arrays of segment endpoints *already translated
    so the query point sits at the origin* (that is how the scalar
    ``Polygon.distance_to_point_m`` frames it: a per-point ENU projection
    centred on the point). Returns the ``(P,)`` minimum over the edge
    axis. Mirrors ``geometry._point_segment_distance`` exactly, including
    the degenerate zero-length-segment branch.
    """
    dx, dy = x2 - x1, y2 - y1
    seg2 = dx * dx + dy * dy
    with np.errstate(divide="ignore", invalid="ignore"):
        t = ((0.0 - x1) * dx + (0.0 - y1) * dy) / seg2
    t = np.clip(t, 0.0, 1.0)
    ex = 0.0 - (x1 + t * dx)
    ey = 0.0 - (y1 + t * dy)
    d_seg = np.sqrt(ex * ex + ey * ey)
    ax, ay = 0.0 - x1, 0.0 - y1
    d_end = np.sqrt(ax * ax + ay * ay)
    return np.where(seg2 <= 0.0, d_end, d_seg).min(axis=1)


def polygon_boundary_distance_m_batch(polygon, lons: np.ndarray, lats: np.ndarray) -> np.ndarray:
    """Distance in metres from each point to a polygon's outer boundary.

    Twin of the edge-loop in ``Polygon.distance_to_point_m`` (which
    considers the outer ring only): each point gets its own ENU frame
    centred on itself, so the per-point metre scale matches the scalar
    path's ``LocalProjection(lon, lat)`` exactly. Callers are expected to
    have excluded interior points already (the scalar twin returns 0.0
    for them before reaching the edge loop).
    """
    edge_fn = getattr(polygon, "_edge_arrays", None)
    if edge_fn is not None:  # reuse Polygon's cached per-ring edge arrays
        ax, ay, bx, by = edge_fn()[0]
    else:
        verts = np.asarray(polygon.vertices, dtype=np.float64)
        ax, ay = verts[:, 0], verts[:, 1]
        bx, by = np.roll(ax, -1), np.roll(ay, -1)
    # Per-point equirectangular scale, mirroring LocalProjection.__init__:
    # mx = metres/deg lon at the point's latitude, my = metres/deg lat.
    my = EARTH_RADIUS_M * math.pi / 180.0
    mx = my * np.cos(lats * math.pi / 180.0)
    lon = lons[:, None]
    lat = lats[:, None]
    x1 = (ax - lon) * mx[:, None]
    y1 = (ay - lat) * my
    x2 = (bx - lon) * mx[:, None]
    y2 = (by - lat) * my
    return point_segment_distance_batch(x1, y1, x2, y2)
