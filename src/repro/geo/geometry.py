"""Planar/geodesic geometry primitives: points, bounding boxes, polygons.

These are the building blocks of every spatial component in the stack:
the synopses generator, link discovery (Section 4.2.4 of the paper),
the knowledge-graph store's spatio-temporal encoding and the visual
analytics density/filtering backends.

Geodesic distance uses the haversine formula; for local work (turn-rate
estimation, cross-track errors) positions are projected to a local
east-north-up (ENU) tangent plane, which is what trajectory-prediction
literature uses for errors quoted in metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from . import kernels
from .units import EARTH_RADIUS_M, deg_to_rad, metres_per_degree_lat, metres_per_degree_lon, rad_to_deg


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A geographic position: longitude/latitude in degrees, altitude in metres."""

    lon: float
    lat: float
    alt: float = 0.0

    def distance_to(self, other: "GeoPoint") -> float:
        """Great-circle surface distance to ``other`` in metres."""
        return haversine_m(self.lon, self.lat, other.lon, other.lat)

    def distance_3d_to(self, other: "GeoPoint") -> float:
        """Distance including the altitude difference, in metres."""
        d = self.distance_to(other)
        dz = self.alt - other.alt
        return math.hypot(d, dz)

    def bearing_to(self, other: "GeoPoint") -> float:
        """Initial great-circle bearing towards ``other``, degrees in [0, 360)."""
        return initial_bearing_deg(self.lon, self.lat, other.lon, other.lat)

    def destination(self, bearing_deg: float, distance_m: float) -> "GeoPoint":
        """The point reached by travelling ``distance_m`` along ``bearing_deg``."""
        lon, lat = destination_point(self.lon, self.lat, bearing_deg, distance_m)
        return GeoPoint(lon, lat, self.alt)


def haversine_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance between two lon/lat pairs, in metres."""
    phi1 = deg_to_rad(lat1)
    phi2 = deg_to_rad(lat2)
    dphi = deg_to_rad(lat2 - lat1)
    dlmb = deg_to_rad(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    # Clamp for numerical safety near antipodal points.
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def initial_bearing_deg(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Initial bearing from point 1 to point 2, degrees clockwise from north."""
    phi1 = deg_to_rad(lat1)
    phi2 = deg_to_rad(lat2)
    dlmb = deg_to_rad(lon2 - lon1)
    y = math.sin(dlmb) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlmb)
    theta = math.atan2(y, x)
    deg = rad_to_deg(theta)
    return deg + 360.0 if deg < 0.0 else deg


def destination_point(lon: float, lat: float, bearing_deg: float, distance_m: float) -> tuple[float, float]:
    """Destination lon/lat after travelling ``distance_m`` on ``bearing_deg``."""
    delta = distance_m / EARTH_RADIUS_M
    theta = deg_to_rad(bearing_deg)
    phi1 = deg_to_rad(lat)
    lmb1 = deg_to_rad(lon)
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    phi2 = math.asin(min(1.0, max(-1.0, sin_phi2)))
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * math.sin(phi2)
    lmb2 = lmb1 + math.atan2(y, x)
    lon2 = rad_to_deg(lmb2)
    # Normalize longitude to [-180, 180).
    lon2 = (lon2 + 540.0) % 360.0 - 180.0
    return lon2, rad_to_deg(phi2)


class LocalProjection:
    """Equirectangular projection to a local ENU-style plane (metres).

    Accurate for regional extents (hundreds of km), which matches every
    per-trajectory computation in the paper: turn detection, per-waypoint
    deviations (Figure 5b), cross-track errors.
    """

    def __init__(self, origin_lon: float, origin_lat: float):
        self.origin_lon = origin_lon
        self.origin_lat = origin_lat
        self._mx = metres_per_degree_lon(origin_lat)
        self._my = metres_per_degree_lat()

    def to_xy(self, lon: float, lat: float) -> tuple[float, float]:
        """Project lon/lat to local (east, north) metres."""
        return (lon - self.origin_lon) * self._mx, (lat - self.origin_lat) * self._my

    def to_lonlat(self, x: float, y: float) -> tuple[float, float]:
        """Inverse projection from local metres back to lon/lat degrees."""
        return self.origin_lon + x / self._mx, self.origin_lat + y / self._my

    def to_xy_batch(self, lons, lats) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`to_xy`: project coordinate arrays in one pass.

        Uses the same precomputed scale factors as the scalar twin, so
        the projected metres are bit-for-bit identical per element.
        """
        lon, lat = kernels.as_lonlat(lons, lats)
        return (lon - self.origin_lon) * self._mx, (lat - self.origin_lat) * self._my

    def to_lonlat_batch(self, xs, ys) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`to_lonlat`; bit-for-bit twin of the scalar inverse."""
        x, y = kernels.as_lonlat(xs, ys)
        return self.origin_lon + x / self._mx, self.origin_lat + y / self._my


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned lon/lat bounding box."""

    min_lon: float
    min_lat: float
    max_lon: float
    max_lat: float

    def __post_init__(self) -> None:
        if self.min_lon > self.max_lon or self.min_lat > self.max_lat:
            raise ValueError(f"degenerate bbox: {self}")

    @property
    def width(self) -> float:
        return self.max_lon - self.min_lon

    @property
    def height(self) -> float:
        return self.max_lat - self.min_lat

    @property
    def center(self) -> tuple[float, float]:
        return (self.min_lon + self.max_lon) / 2.0, (self.min_lat + self.max_lat) / 2.0

    def contains(self, lon: float, lat: float) -> bool:
        """Whether the point lies inside (inclusive of edges)."""
        return self.min_lon <= lon <= self.max_lon and self.min_lat <= lat <= self.max_lat

    def contains_batch(self, lons, lats) -> np.ndarray:
        """Vectorized :meth:`contains`; bit-for-bit twin (pure comparisons)."""
        lon, lat = kernels.as_lonlat(lons, lats)
        return (self.min_lon <= lon) & (lon <= self.max_lon) & (self.min_lat <= lat) & (lat <= self.max_lat)

    def intersects(self, other: "BBox") -> bool:
        """Whether the two boxes overlap (touching counts)."""
        return not (
            other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
            or other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
        )

    def expanded(self, margin_deg: float) -> "BBox":
        """A copy grown by ``margin_deg`` degrees on every side."""
        return BBox(
            self.min_lon - margin_deg,
            self.min_lat - margin_deg,
            self.max_lon + margin_deg,
            self.max_lat + margin_deg,
        )

    def expanded_by_metres(self, margin_m: float) -> "BBox":
        """A copy grown by ``margin_m`` metres on every side."""
        lat = self.center[1]
        dlat = margin_m / metres_per_degree_lat()
        dlon = margin_m / max(1.0, metres_per_degree_lon(lat))
        return BBox(self.min_lon - dlon, self.min_lat - dlat, self.max_lon + dlon, self.max_lat + dlat)

    @staticmethod
    def of_points(points: Iterable[tuple[float, float]]) -> "BBox":
        """The tight bounding box of an iterable of (lon, lat) pairs."""
        it = iter(points)
        try:
            lon, lat = next(it)
        except StopIteration:
            raise ValueError("cannot build a bbox from zero points") from None
        min_lon = max_lon = lon
        min_lat = max_lat = lat
        for lon, lat in it:
            min_lon = min(min_lon, lon)
            max_lon = max(max_lon, lon)
            min_lat = min(min_lat, lat)
            max_lat = max(max_lat, lat)
        return BBox(min_lon, min_lat, max_lon, max_lat)


class Polygon:
    """A simple (non-self-intersecting) polygon over lon/lat vertices.

    Supports point-in-polygon (ray casting, treating lon/lat as planar,
    which is standard for surveillance-region work away from the poles),
    polygon-bbox overlap, and distance from a point to the boundary.
    """

    __slots__ = ("vertices", "bbox", "_holes", "_edges_np")

    def __init__(self, vertices: Sequence[tuple[float, float]], holes: Sequence[Sequence[tuple[float, float]]] = ()):
        pts = [(float(lon), float(lat)) for lon, lat in vertices]
        if len(pts) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        # Drop an explicit closing vertex if present.
        if pts[0] == pts[-1]:
            pts = pts[:-1]
        if len(pts) < 3:
            raise ValueError("a polygon needs at least 3 distinct vertices")
        self.vertices: list[tuple[float, float]] = pts
        self._holes: list[list[tuple[float, float]]] = [
            [(float(lon), float(lat)) for lon, lat in ring] for ring in holes
        ]
        self.bbox = BBox.of_points(pts)
        self._edges_np: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] | None = None

    def __len__(self) -> int:
        return len(self.vertices)

    def __repr__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices, bbox={self.bbox})"

    @property
    def holes(self) -> list[list[tuple[float, float]]]:
        return self._holes

    def contains(self, lon: float, lat: float) -> bool:
        """Point-in-polygon test (even-odd rule); boundary points count as inside."""
        if not self.bbox.contains(lon, lat):
            return False
        return self.contains_exact(lon, lat)

    def contains_exact(self, lon: float, lat: float) -> bool:
        """The exact even-odd test with no bounding-box shortcut.

        This is the refinement predicate of the link-discovery framework:
        the pruning work belongs to the blocking/mask stages, so refinement
        is the full geometric evaluation.
        """
        if not _ring_contains(self.vertices, lon, lat):
            return False
        return not any(_ring_contains(ring, lon, lat) for ring in self._holes)

    def _edge_arrays(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Lazily built per-ring edge arrays (outer ring first) for batch PIP."""
        if self._edges_np is None:
            self._edges_np = kernels.rings_to_arrays([self.vertices, *self._holes])
        return self._edges_np

    def contains_batch(self, lons, lats) -> np.ndarray:
        """Vectorized :meth:`contains`: bbox prefilter, then exact even-odd.

        Bit-for-bit twin of the scalar path — the predicate is pure
        arithmetic, so the verdict array equals a per-point loop exactly.
        """
        lon, lat = kernels.as_lonlat(lons, lats)
        verdict = self.bbox.contains_batch(lon, lat)
        if verdict.any():
            verdict[verdict] = self.contains_exact_batch(lon[verdict], lat[verdict])
        return verdict

    def contains_exact_batch(self, lons, lats) -> np.ndarray:
        """Vectorized :meth:`contains_exact` (no bbox shortcut); holes excluded."""
        lon, lat = kernels.as_lonlat(lons, lats)
        rings = self._edge_arrays()
        inside = kernels.ring_contains_batch(rings[0], lon, lat)
        for hole in rings[1:]:
            inside &= ~kernels.ring_contains_batch(hole, lon, lat)
        return inside

    def area_deg2(self) -> float:
        """Signed shoelace area in square degrees (holes subtracted), absolute value."""
        area = abs(_ring_area(self.vertices))
        for ring in self._holes:
            area -= abs(_ring_area(ring))
        return max(0.0, area)

    def centroid(self) -> tuple[float, float]:
        """Vertex-average centroid (adequate for blocking/grid assignment)."""
        n = len(self.vertices)
        return (sum(v[0] for v in self.vertices) / n, sum(v[1] for v in self.vertices) / n)

    def edges(self) -> Iterator[tuple[tuple[float, float], tuple[float, float]]]:
        """Iterate the boundary edges (closing edge included)."""
        verts = self.vertices
        for i in range(len(verts)):
            yield verts[i], verts[(i + 1) % len(verts)]

    def distance_to_point_m(self, lon: float, lat: float) -> float:
        """Distance from the point to the polygon, in metres (0 if inside)."""
        if self.contains(lon, lat):
            return 0.0
        return polygon_boundary_distance_m(self, lon, lat)

    def distance_to_point_m_batch(self, lons, lats) -> np.ndarray:
        """Vectorized :meth:`distance_to_point_m` (0.0 for interior points)."""
        lon, lat = kernels.as_lonlat(lons, lats)
        out = np.zeros(lon.shape, dtype=np.float64)
        outside = ~self.contains_batch(lon, lat)
        if outside.any():
            out[outside] = kernels.polygon_boundary_distance_m_batch(self, lon[outside], lat[outside])
        return out

    def intersects_bbox(self, box: BBox) -> bool:
        """Whether the polygon overlaps the bbox (conservative exact test)."""
        if not self.bbox.intersects(box):
            return False
        # Any polygon vertex inside the box?
        if any(box.contains(lon, lat) for lon, lat in self.vertices):
            return True
        # Any box corner inside the polygon?
        corners = (
            (box.min_lon, box.min_lat),
            (box.min_lon, box.max_lat),
            (box.max_lon, box.min_lat),
            (box.max_lon, box.max_lat),
        )
        if any(self.contains(lon, lat) for lon, lat in corners):
            return True
        # Any polygon edge crossing a box edge?
        box_edges = (
            (corners[0], corners[1]),
            (corners[1], corners[3]),
            (corners[3], corners[2]),
            (corners[2], corners[0]),
        )
        return any(
            segments_intersect(e1[0], e1[1], e2[0], e2[1])
            for e1 in self.edges()
            for e2 in box_edges
        )


def _ring_contains(ring: Sequence[tuple[float, float]], lon: float, lat: float) -> bool:
    """Even-odd ray-casting point-in-ring test, boundary-inclusive."""
    inside = False
    n = len(ring)
    for i in range(n):
        x1, y1 = ring[i]
        x2, y2 = ring[(i + 1) % n]
        # On-vertex / on-horizontal-edge fast checks.
        if (lon, lat) == (x1, y1):
            return True
        if (y1 > lat) != (y2 > lat):
            x_cross = x1 + (lat - y1) * (x2 - x1) / (y2 - y1)
            if abs(x_cross - lon) < 1e-15:
                return True
            if lon < x_cross:
                inside = not inside
    return inside


def _ring_area(ring: Sequence[tuple[float, float]]) -> float:
    """Signed shoelace area of a ring in square degrees."""
    area = 0.0
    n = len(ring)
    for i in range(n):
        x1, y1 = ring[i]
        x2, y2 = ring[(i + 1) % n]
        area += x1 * y2 - x2 * y1
    return area / 2.0


def polygon_boundary_distance_m(polygon: Polygon, lon: float, lat: float) -> float:
    """Distance in metres from the point to the polygon's outer boundary.

    The raw edge loop with no interior shortcut — the scalar oracle for
    ``kernels.polygon_boundary_distance_m_batch``. Each query point gets
    its own local ENU frame, so distances stay metre-accurate regardless
    of where the polygon sits.
    """
    proj = LocalProjection(lon, lat)
    px, py = 0.0, 0.0
    best = math.inf
    for (ax, ay), (bx, by) in polygon.edges():
        x1, y1 = proj.to_xy(ax, ay)
        x2, y2 = proj.to_xy(bx, by)
        best = min(best, _point_segment_distance(px, py, x1, y1, x2, y2))
    return best


def _point_segment_distance(px: float, py: float, x1: float, y1: float, x2: float, y2: float) -> float:
    """Euclidean distance from point (px,py) to segment (x1,y1)-(x2,y2).

    The norm is spelled ``sqrt(ex*ex + ey*ey)`` rather than ``hypot`` so
    the batch kernel (numpy has no fused hypot matching the libm one)
    reproduces it bit-for-bit.
    """
    dx, dy = x2 - x1, y2 - y1
    seg2 = dx * dx + dy * dy
    if seg2 <= 0.0:
        ex, ey = px - x1, py - y1
        return math.sqrt(ex * ex + ey * ey)
    t = ((px - x1) * dx + (py - y1) * dy) / seg2
    t = min(1.0, max(0.0, t))
    ex, ey = px - (x1 + t * dx), py - (y1 + t * dy)
    return math.sqrt(ex * ex + ey * ey)


def _orient(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> float:
    """Cross-product orientation of the triple (a, b, c)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def segments_intersect(
    a: tuple[float, float], b: tuple[float, float], c: tuple[float, float], d: tuple[float, float]
) -> bool:
    """Whether segment ab intersects segment cd (touching counts)."""
    d1 = _orient(*c, *d, *a)
    d2 = _orient(*c, *d, *b)
    d3 = _orient(*a, *b, *c)
    d4 = _orient(*a, *b, *d)
    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and ((d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)):
        return True
    return (
        (d1 == 0 and _on_segment(c, d, a))
        or (d2 == 0 and _on_segment(c, d, b))
        or (d3 == 0 and _on_segment(a, b, c))
        or (d4 == 0 and _on_segment(a, b, d))
    )


def _on_segment(a: tuple[float, float], b: tuple[float, float], p: tuple[float, float]) -> bool:
    """Whether collinear point p lies within segment ab's bounding box."""
    return min(a[0], b[0]) <= p[0] <= max(a[0], b[0]) and min(a[1], b[1]) <= p[1] <= max(a[1], b[1])
