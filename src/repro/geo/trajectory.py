"""Trajectory containers: timestamped position sequences with derived motion.

The paper's data model (Section 4.1) views a trajectory at several
levels of analysis — raw position sequences, synopses of critical
points, semantic segments. This module provides the raw level:
``PositionFix`` (one surveillance message) and ``Trajectory`` (a
per-entity, time-ordered sequence) with the derived kinematics
(speed, heading, acceleration, turn rate, vertical rate) that the
in-situ processor, synopses generator and predictors consume.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from . import kernels
from .geometry import GeoPoint, LocalProjection, haversine_m, initial_bearing_deg
from .units import heading_difference, normalize_heading


@dataclass(frozen=True, slots=True)
class PositionFix:
    """A single surveillance report for one moving entity.

    ``speed`` is ground speed in m/s, ``heading`` is course over ground in
    degrees, ``vrate`` is vertical rate in m/s (0 for vessels). Any of the
    kinematic fields may be missing from a raw feed, in which case they are
    derived from consecutive fixes by :meth:`Trajectory.with_derived_motion`.
    """

    entity_id: str
    t: float
    lon: float
    lat: float
    alt: float = 0.0
    speed: float | None = None
    heading: float | None = None
    vrate: float | None = None
    source: str = ""
    annotations: dict = field(default_factory=dict, compare=False)

    @property
    def point(self) -> GeoPoint:
        return GeoPoint(self.lon, self.lat, self.alt)

    def distance_to(self, other: "PositionFix") -> float:
        """Surface distance to another fix, metres."""
        return haversine_m(self.lon, self.lat, other.lon, other.lat)

    def annotated(self, **extra) -> "PositionFix":
        """A copy with additional annotation entries merged in."""
        merged = dict(self.annotations)
        merged.update(extra)
        return replace(self, annotations=merged)


class Trajectory:
    """An immutable-by-convention, time-ordered sequence of fixes for one entity."""

    __slots__ = ("entity_id", "fixes", "_times")

    def __init__(self, entity_id: str, fixes: Iterable[PositionFix]):
        ordered = sorted(fixes, key=lambda f: f.t)
        for f in ordered:
            if f.entity_id != entity_id:
                raise ValueError(f"fix for {f.entity_id!r} in trajectory of {entity_id!r}")
        self.entity_id = entity_id
        self.fixes: list[PositionFix] = ordered
        self._times = [f.t for f in ordered]

    def __len__(self) -> int:
        return len(self.fixes)

    def __iter__(self) -> Iterator[PositionFix]:
        return iter(self.fixes)

    def __getitem__(self, idx: int) -> PositionFix:
        return self.fixes[idx]

    def __repr__(self) -> str:
        span = f"{self.start_time():.0f}..{self.end_time():.0f}" if self.fixes else "empty"
        return f"Trajectory({self.entity_id!r}, {len(self)} fixes, t={span})"

    def start_time(self) -> float:
        if not self.fixes:
            raise ValueError("empty trajectory has no start time")
        return self.fixes[0].t

    def end_time(self) -> float:
        if not self.fixes:
            raise ValueError("empty trajectory has no end time")
        return self.fixes[-1].t

    def duration(self) -> float:
        """Time span covered, seconds (0 for fewer than 2 fixes)."""
        return 0.0 if len(self.fixes) < 2 else self.end_time() - self.start_time()

    def length_m(self) -> float:
        """Total travelled surface distance, metres."""
        return sum(self.fixes[i].distance_to(self.fixes[i + 1]) for i in range(len(self.fixes) - 1))

    def slice_time(self, t_min: float, t_max: float) -> "Trajectory":
        """The sub-trajectory with ``t_min <= t <= t_max``."""
        lo = bisect.bisect_left(self._times, t_min)
        hi = bisect.bisect_right(self._times, t_max)
        return Trajectory(self.entity_id, self.fixes[lo:hi])

    def resampled(self, step_s: float) -> "Trajectory":
        """A linearly interpolated copy on a uniform ``step_s`` time lattice."""
        if step_s <= 0:
            raise ValueError("step must be positive")
        if len(self.fixes) < 2:
            return Trajectory(self.entity_id, list(self.fixes))
        out: list[PositionFix] = []
        t = self.start_time()
        end = self.end_time()
        while t <= end + 1e-9:
            out.append(self.at_time(t))
            t += step_s
        return Trajectory(self.entity_id, out)

    def at_time(self, t: float) -> PositionFix:
        """The (interpolated) fix at time ``t`` (clamped to the time span)."""
        if not self.fixes:
            raise ValueError("empty trajectory")
        if t <= self._times[0]:
            return self.fixes[0]
        if t >= self._times[-1]:
            return self.fixes[-1]
        hi = bisect.bisect_right(self._times, t)
        a, b = self.fixes[hi - 1], self.fixes[hi]
        if b.t == a.t:
            return a
        w = (t - a.t) / (b.t - a.t)
        return PositionFix(
            entity_id=self.entity_id,
            t=t,
            lon=a.lon + w * (b.lon - a.lon),
            lat=a.lat + w * (b.lat - a.lat),
            alt=a.alt + w * (b.alt - a.alt),
            speed=_lerp_optional(a.speed, b.speed, w),
            heading=_lerp_heading(a.heading, b.heading, w),
            vrate=_lerp_optional(a.vrate, b.vrate, w),
            source=a.source,
        )

    def with_derived_motion(self) -> "Trajectory":
        """A copy whose fixes all carry speed/heading/vrate.

        Missing values are derived from consecutive displacement; present
        values are kept (surveillance-reported kinematics win over derived).
        """
        if not self.fixes:
            return Trajectory(self.entity_id, [])
        out: list[PositionFix] = []
        for i, f in enumerate(self.fixes):
            prev = self.fixes[i - 1] if i > 0 else None
            nxt = self.fixes[i + 1] if i + 1 < len(self.fixes) else None
            ref_a, ref_b = (prev, f) if prev is not None else (f, nxt)
            speed, heading, vrate = f.speed, f.heading, f.vrate
            if ref_a is not None and ref_b is not None and ref_b.t > ref_a.t:
                dt = ref_b.t - ref_a.t
                if speed is None:
                    speed = ref_a.distance_to(ref_b) / dt
                if heading is None:
                    heading = initial_bearing_deg(ref_a.lon, ref_a.lat, ref_b.lon, ref_b.lat)
                if vrate is None:
                    vrate = (ref_b.alt - ref_a.alt) / dt
            out.append(
                replace(
                    f,
                    speed=speed if speed is not None else 0.0,
                    heading=normalize_heading(heading) if heading is not None else 0.0,
                    vrate=vrate if vrate is not None else 0.0,
                )
            )
        return Trajectory(self.entity_id, out)

    def to_xy(self, projection: LocalProjection | None = None) -> list[tuple[float, float]]:
        """Project all fixes to local metres; default origin is the first fix."""
        if not self.fixes:
            return []
        proj = projection or LocalProjection(self.fixes[0].lon, self.fixes[0].lat)
        return [proj.to_xy(f.lon, f.lat) for f in self.fixes]


def _lerp_optional(a: float | None, b: float | None, w: float) -> float | None:
    if a is None or b is None:
        return a if b is None else b
    return a + w * (b - a)


def _lerp_heading(a: float | None, b: float | None, w: float) -> float | None:
    """Interpolate headings along the shortest arc."""
    if a is None or b is None:
        return a if b is None else b
    diff = (b - a + 180.0) % 360.0 - 180.0
    return normalize_heading(a + w * diff)


def segment_speeds_mps(
    ts: Sequence[float],
    lons: Sequence[float],
    lats: Sequence[float],
    vectorized: bool = True,
) -> list[float]:
    """Ground speed of each consecutive-fix segment, m/s (``n - 1`` values).

    The batched speed kernel behind derived-motion and synopses work at
    scale: one haversine pass over the whole track instead of a Python
    loop. Non-increasing timestamps yield 0.0 for that segment, exactly
    as the scalar path (``vectorized=False``, the equivalence oracle)
    does. Distances agree with the scalar twin to the last ulp of
    ``asin`` (see :mod:`.kernels`); the zero-dt verdicts are exact.
    """
    if len(ts) != len(lons) or len(ts) != len(lats):
        raise ValueError("ts/lons/lats must have equal lengths")
    if not vectorized:
        out: list[float] = []
        for i in range(len(ts) - 1):
            dt = ts[i + 1] - ts[i]
            if dt <= 0.0:
                out.append(0.0)
                continue
            out.append(haversine_m(lons[i], lats[i], lons[i + 1], lats[i + 1]) / dt)
        return out
    t = kernels.as_array(ts)
    lon, lat = kernels.as_lonlat(lons, lats)
    dt = t[1:] - t[:-1]
    d = kernels.haversine_m_batch(lon[:-1], lat[:-1], lon[1:], lat[1:])
    with np.errstate(divide="ignore", invalid="ignore"):
        v = d / dt
    return np.where(dt > 0.0, v, 0.0).tolist()


def turn_rates_deg_s(
    ts: Sequence[float],
    headings: Sequence[float],
    vectorized: bool = True,
) -> list[float]:
    """Absolute turn rate of each consecutive-fix segment, deg/s (``n - 1`` values).

    Feeds turn-point detection (the synopses generator's critical-point
    extraction). Pure arithmetic — ``fmod``, comparisons, subtraction —
    so the batch path is bit-for-bit identical to the scalar oracle
    (``vectorized=False``), including the 0.0 verdict for non-increasing
    timestamps.
    """
    if len(ts) != len(headings):
        raise ValueError("ts/headings must have equal lengths")
    if not vectorized:
        out: list[float] = []
        for i in range(len(ts) - 1):
            dt = ts[i + 1] - ts[i]
            if dt <= 0.0:
                out.append(0.0)
                continue
            out.append(heading_difference(headings[i], headings[i + 1]) / dt)
        return out
    t = kernels.as_array(ts)
    h = kernels.as_array(headings)
    dt = t[1:] - t[:-1]
    dh = kernels.heading_difference_batch(h[:-1], h[1:])
    with np.errstate(divide="ignore", invalid="ignore"):
        r = dh / dt
    return np.where(dt > 0.0, r, 0.0).tolist()


def group_fixes_by_entity(fixes: Iterable[PositionFix]) -> dict[str, Trajectory]:
    """Partition a fix stream into per-entity trajectories."""
    buckets: dict[str, list[PositionFix]] = {}
    for f in fixes:
        buckets.setdefault(f.entity_id, []).append(f)
    return {eid: Trajectory(eid, fs) for eid, fs in buckets.items()}


def split_on_gaps(trajectory: Trajectory, max_gap_s: float) -> list[Trajectory]:
    """Split a trajectory into segments wherever the report gap exceeds ``max_gap_s``.

    This is the standard trip-segmentation step applied before offline
    analytics (the batch layer in Figure 2), since a vessel's AIS history
    is one long stream covering many voyages.
    """
    if max_gap_s <= 0:
        raise ValueError("gap threshold must be positive")
    if len(trajectory) == 0:
        return []
    segments: list[list[PositionFix]] = [[trajectory[0]]]
    for prev, cur in zip(trajectory, list(trajectory)[1:]):
        if cur.t - prev.t > max_gap_s:
            segments.append([])
        segments[-1].append(cur)
    return [Trajectory(trajectory.entity_id, seg) for seg in segments if seg]


def mean_sampling_period(trajectory: Trajectory) -> float:
    """The mean inter-report interval in seconds (inf for < 2 fixes)."""
    if len(trajectory) < 2:
        return math.inf
    return trajectory.duration() / (len(trajectory) - 1)


def crop_to_bbox(trajectory: Trajectory, predicate: Callable[[PositionFix], bool]) -> Trajectory:
    """Keep only fixes satisfying ``predicate`` (e.g. inside an area of interest)."""
    return Trajectory(trajectory.entity_id, [f for f in trajectory if predicate(f)])


def cross_track_error_m(actual: Sequence[PositionFix], reference: Sequence[PositionFix]) -> list[float]:
    """Per-point distance from each actual fix to the closest reference segment.

    This is the "cross-track error" metric the paper quotes for the hybrid
    clustering/HMM predictor (Section 5): how far the actual (or predicted)
    track strays laterally from a reference path (e.g. a flight plan).
    """
    if len(reference) < 2:
        raise ValueError("reference path needs at least 2 points")
    proj = LocalProjection(reference[0].lon, reference[0].lat)
    ref_xy = [proj.to_xy(p.lon, p.lat) for p in reference]
    errors: list[float] = []
    for fix in actual:
        px, py = proj.to_xy(fix.lon, fix.lat)
        best = math.inf
        for (x1, y1), (x2, y2) in zip(ref_xy, ref_xy[1:]):
            best = min(best, _segment_distance(px, py, x1, y1, x2, y2))
        errors.append(best)
    return errors


def _segment_distance(px: float, py: float, x1: float, y1: float, x2: float, y2: float) -> float:
    dx, dy = x2 - x1, y2 - y1
    seg2 = dx * dx + dy * dy
    if seg2 <= 0.0:
        return math.hypot(px - x1, py - y1)
    t = min(1.0, max(0.0, ((px - x1) * dx + (py - y1) * dy) / seg2))
    return math.hypot(px - (x1 + t * dx), py - (y1 + t * dy))
