"""Physical units and conversions used across the mobility stack.

All geographic computations in the library use the WGS84 spherical
approximation: good to ~0.5% for the ranges involved in AIS/ADS-B
surveillance, and identical to what online surveillance systems
(and the datAcron prototypes) use for speed.

Conventions
-----------
- longitudes/latitudes in decimal degrees,
- distances in metres,
- speeds in metres per second (helpers for knots exist because both
  AIS and ATM feeds natively report knots),
- altitudes in metres (helpers for feet / flight levels),
- timestamps as POSIX seconds (float).
"""

from __future__ import annotations

import math

#: Mean Earth radius (metres), IUGG value.
EARTH_RADIUS_M = 6_371_008.8

#: One international nautical mile in metres.
NAUTICAL_MILE_M = 1852.0

#: One foot in metres.
FOOT_M = 0.3048

#: One knot (nautical mile per hour) in metres per second.
KNOT_MS = NAUTICAL_MILE_M / 3600.0


def knots_to_ms(knots: float) -> float:
    """Convert a speed in knots to metres per second."""
    return knots * KNOT_MS


def ms_to_knots(ms: float) -> float:
    """Convert a speed in metres per second to knots."""
    return ms / KNOT_MS


def feet_to_m(feet: float) -> float:
    """Convert an altitude in feet to metres."""
    return feet * FOOT_M


def m_to_feet(metres: float) -> float:
    """Convert an altitude in metres to feet."""
    return metres / FOOT_M


def flight_level_to_m(fl: float) -> float:
    """Convert a flight level (hundreds of feet) to metres."""
    return feet_to_m(fl * 100.0)


def fpm_to_ms(feet_per_minute: float) -> float:
    """Convert a vertical rate in feet/minute to metres/second."""
    return feet_to_m(feet_per_minute) / 60.0


def deg_to_rad(deg: float) -> float:
    """Degrees to radians."""
    return deg * math.pi / 180.0


def rad_to_deg(rad: float) -> float:
    """Radians to degrees."""
    return rad * 180.0 / math.pi


def normalize_heading(deg: float) -> float:
    """Normalize a heading to the range [0, 360).

    >>> normalize_heading(-90.0)
    270.0
    >>> normalize_heading(720.5)
    0.5
    """
    h = math.fmod(deg, 360.0)
    if h < 0.0:
        h += 360.0
    # fmod of values like 360.0 - 1e-16 can round back to 360.0
    return 0.0 if h >= 360.0 else h


def heading_difference(a: float, b: float) -> float:
    """Smallest absolute angular difference between two headings, in [0, 180].

    >>> heading_difference(350.0, 10.0)
    20.0
    """
    d = abs(normalize_heading(a) - normalize_heading(b))
    return 360.0 - d if d > 180.0 else d


def metres_per_degree_lat() -> float:
    """Metres spanned by one degree of latitude (spherical Earth)."""
    return EARTH_RADIUS_M * math.pi / 180.0


def metres_per_degree_lon(lat_deg: float) -> float:
    """Metres spanned by one degree of longitude at the given latitude."""
    return metres_per_degree_lat() * math.cos(deg_to_rad(lat_deg))
