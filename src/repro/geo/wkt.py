"""Well-Known Text (WKT) reading and writing for the geometry types.

The datAcron RDF generators (Section 4.2.3) extract the WKT
representation of geometries from shapefile-like sources and embed it
in ``geo:asWKT`` literals; the link-discovery component parses those
literals back. This module implements the POINT / LINESTRING / POLYGON
/ MULTIPOLYGON subset that the surveillance, region and port sources
need.
"""

from __future__ import annotations

import re
from typing import Sequence

from .geometry import GeoPoint, Polygon

_NUMBER = r"[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?"
_POINT_RE = re.compile(rf"^\s*POINT\s*\(\s*({_NUMBER})\s+({_NUMBER})(?:\s+({_NUMBER}))?\s*\)\s*$", re.IGNORECASE)


class WKTError(ValueError):
    """Raised when a WKT string cannot be parsed."""


def point_to_wkt(point: GeoPoint, include_alt: bool = False) -> str:
    """Serialize a GeoPoint; 2-D by default, ``POINT Z``-style triple if asked."""
    if include_alt:
        return f"POINT ({point.lon:.6f} {point.lat:.6f} {point.alt:.1f})"
    return f"POINT ({point.lon:.6f} {point.lat:.6f})"


def parse_point(wkt: str) -> GeoPoint:
    """Parse a ``POINT (lon lat [alt])`` literal."""
    m = _POINT_RE.match(wkt)
    if not m:
        raise WKTError(f"not a WKT point: {wkt!r}")
    lon, lat = float(m.group(1)), float(m.group(2))
    alt = float(m.group(3)) if m.group(3) else 0.0
    return GeoPoint(lon, lat, alt)


def linestring_to_wkt(points: Sequence[tuple[float, float]]) -> str:
    """Serialize a sequence of (lon, lat) pairs as a LINESTRING."""
    if len(points) < 2:
        raise WKTError("a linestring needs at least 2 points")
    coords = ", ".join(f"{lon:.6f} {lat:.6f}" for lon, lat in points)
    return f"LINESTRING ({coords})"


def parse_linestring(wkt: str) -> list[tuple[float, float]]:
    """Parse a LINESTRING literal to a list of (lon, lat) pairs."""
    body = _extract_body(wkt, "LINESTRING")
    pts = _parse_coord_list(body)
    if len(pts) < 2:
        raise WKTError(f"linestring with fewer than 2 points: {wkt!r}")
    return pts


def polygon_to_wkt(polygon: Polygon) -> str:
    """Serialize a Polygon (outer ring plus holes), rings explicitly closed."""
    rings = [polygon.vertices] + polygon.holes
    ring_strs = []
    for ring in rings:
        closed = list(ring) + [ring[0]]
        ring_strs.append("(" + ", ".join(f"{lon:.6f} {lat:.6f}" for lon, lat in closed) + ")")
    return f"POLYGON ({', '.join(ring_strs)})"


def parse_polygon(wkt: str) -> Polygon:
    """Parse a POLYGON literal into a Polygon (holes supported)."""
    body = _extract_body(wkt, "POLYGON")
    rings = _split_rings(body)
    if not rings:
        raise WKTError(f"polygon without rings: {wkt!r}")
    outer = _parse_coord_list(rings[0])
    holes = [_parse_coord_list(r) for r in rings[1:]]
    return Polygon(outer, holes=holes)


def multipolygon_to_wkt(polygons: Sequence[Polygon]) -> str:
    """Serialize several polygons as a MULTIPOLYGON."""
    if not polygons:
        raise WKTError("an empty multipolygon is not representable")
    parts = []
    for poly in polygons:
        inner = polygon_to_wkt(poly)
        parts.append(inner[len("POLYGON ") :])
    return f"MULTIPOLYGON ({', '.join(parts)})"


def parse_multipolygon(wkt: str) -> list[Polygon]:
    """Parse a MULTIPOLYGON into its component Polygons."""
    body = _extract_body(wkt, "MULTIPOLYGON")
    polys = []
    for chunk in _split_parenthesized_groups(body):
        rings = _split_rings(chunk)
        outer = _parse_coord_list(rings[0])
        holes = [_parse_coord_list(r) for r in rings[1:]]
        polys.append(Polygon(outer, holes=holes))
    if not polys:
        raise WKTError(f"empty multipolygon: {wkt!r}")
    return polys


def parse_geometry(wkt: str) -> GeoPoint | list[tuple[float, float]] | Polygon | list[Polygon]:
    """Dispatch on the WKT tag and parse accordingly."""
    stripped = wkt.lstrip().upper()
    if stripped.startswith("POINT"):
        return parse_point(wkt)
    if stripped.startswith("LINESTRING"):
        return parse_linestring(wkt)
    if stripped.startswith("MULTIPOLYGON"):
        return parse_multipolygon(wkt)
    if stripped.startswith("POLYGON"):
        return parse_polygon(wkt)
    raise WKTError(f"unsupported WKT geometry: {wkt[:40]!r}")


def _extract_body(wkt: str, tag: str) -> str:
    """Return the text between the outermost parentheses of a tagged WKT."""
    stripped = wkt.strip()
    if not stripped.upper().startswith(tag):
        raise WKTError(f"expected {tag}: {wkt[:40]!r}")
    try:
        open_idx = stripped.index("(")
        close_idx = stripped.rindex(")")
    except ValueError:
        raise WKTError(f"malformed WKT (missing parentheses): {wkt[:40]!r}") from None
    if close_idx < open_idx:
        raise WKTError(f"malformed WKT: {wkt[:40]!r}")
    return stripped[open_idx + 1 : close_idx]


def _parse_coord_list(text: str) -> list[tuple[float, float]]:
    """Parse ``lon lat, lon lat, ...`` (trailing Z values tolerated and dropped)."""
    pts: list[tuple[float, float]] = []
    for token in text.split(","):
        token = token.strip().strip("()")
        if not token:
            continue
        parts = token.split()
        if len(parts) < 2:
            raise WKTError(f"bad coordinate pair: {token!r}")
        pts.append((float(parts[0]), float(parts[1])))
    return pts


def _split_rings(body: str) -> list[str]:
    """Split a polygon body ``(ring1), (ring2)`` into ring texts."""
    return _split_parenthesized_groups(body)


def _split_parenthesized_groups(text: str) -> list[str]:
    """Split top-level parenthesized groups, returning their inner text."""
    groups: list[str] = []
    depth = 0
    start = -1
    for i, ch in enumerate(text):
        if ch == "(":
            if depth == 0:
                start = i + 1
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and start >= 0:
                groups.append(text[start:i])
                start = -1
            if depth < 0:
                raise WKTError(f"unbalanced parentheses in {text[:40]!r}")
    if depth != 0:
        raise WKTError(f"unbalanced parentheses in {text[:40]!r}")
    if not groups:
        # A bare ring with no inner parentheses.
        groups = [text]
    return groups
