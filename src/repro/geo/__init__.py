"""Geometry and spatio-temporal primitives (substrate S1).

Everything spatial in the stack — synopses, link discovery, the
knowledge-graph store's encoding, prediction errors, VA densities —
is built on this package.
"""

from . import kernels
from .geometry import (
    BBox,
    GeoPoint,
    LocalProjection,
    Polygon,
    destination_point,
    haversine_m,
    initial_bearing_deg,
    polygon_boundary_distance_m,
    segments_intersect,
)
from .grid import Cell, EquiGrid, SpatioTemporalGrid
from .trajectory import (
    PositionFix,
    Trajectory,
    cross_track_error_m,
    group_fixes_by_entity,
    mean_sampling_period,
    segment_speeds_mps,
    split_on_gaps,
    turn_rates_deg_s,
)
from .units import (
    EARTH_RADIUS_M,
    KNOT_MS,
    NAUTICAL_MILE_M,
    feet_to_m,
    heading_difference,
    knots_to_ms,
    m_to_feet,
    ms_to_knots,
    normalize_heading,
)
from .wkt import (
    WKTError,
    linestring_to_wkt,
    multipolygon_to_wkt,
    parse_geometry,
    parse_linestring,
    parse_multipolygon,
    parse_point,
    parse_polygon,
    point_to_wkt,
    polygon_to_wkt,
)

__all__ = [
    "BBox",
    "Cell",
    "EARTH_RADIUS_M",
    "EquiGrid",
    "GeoPoint",
    "KNOT_MS",
    "LocalProjection",
    "NAUTICAL_MILE_M",
    "Polygon",
    "PositionFix",
    "SpatioTemporalGrid",
    "Trajectory",
    "WKTError",
    "cross_track_error_m",
    "destination_point",
    "feet_to_m",
    "group_fixes_by_entity",
    "haversine_m",
    "heading_difference",
    "initial_bearing_deg",
    "kernels",
    "knots_to_ms",
    "linestring_to_wkt",
    "m_to_feet",
    "mean_sampling_period",
    "ms_to_knots",
    "multipolygon_to_wkt",
    "normalize_heading",
    "parse_geometry",
    "parse_linestring",
    "parse_multipolygon",
    "parse_point",
    "parse_polygon",
    "point_to_wkt",
    "polygon_boundary_distance_m",
    "segment_speeds_mps",
    "segments_intersect",
    "polygon_to_wkt",
    "split_on_gaps",
    "turn_rates_deg_s",
]
