"""An in-process message broker: the Kafka surrogate.

datAcron components communicate through Apache Kafka topics
(Section 3). This module reproduces the semantics the architecture
relies on — named topics, partitions by key, multiple independent
consumer groups with their own offsets, bounded retention — in a
single deterministic process, so the integrated pipeline (repro.core)
can be wired exactly like Figure 2 and tested end to end.

Storage is columnar in spirit: a partition log is a plain list of
records plus one base offset, so a message's offset is its position in
the log — nothing is wrapped per record on the publish hot path, and a
batched read is one list slice. :class:`TopicMessage` objects are
materialized only by the offset-explicit :meth:`Topic.read` view.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Iterable, Iterator, NamedTuple

from .record import Record, StreamStats


class TopicMessage(NamedTuple):
    """A record as stored in a topic partition, with its offset."""

    offset: int
    record: Record


class Topic:
    """A named, partitioned, append-only log of records."""

    def __init__(self, name: str, partitions: int = 1, retention: int | None = None):
        if partitions < 1:
            raise ValueError("a topic needs at least one partition")
        self.name = name
        self.partitions = partitions
        self.retention = retention
        self._logs: list[list[Record]] = [[] for _ in range(partitions)]
        self._base_offsets = [0] * partitions  # offset of the first retained message
        self.stats = StreamStats()
        #: Optional observability hook: called with the overflow count each
        #: time retention trims messages. Attached by ``repro.obs.watch_broker``
        #: — streams stays obs-agnostic, like ``Operator.probe``.
        self.on_drop = None

    def __repr__(self) -> str:
        return f"Topic({self.name!r}, partitions={self.partitions}, size={self.size()})"

    def partition_for(self, record: Record) -> int:
        """Deterministic partition assignment: hash of key, else round-robin by count."""
        if record.key is not None:
            return _stable_hash(record.key) % self.partitions
        return self.stats.records_in % self.partitions

    def publish(self, record: Record) -> tuple[int, int]:
        """Append a record; returns (partition, offset)."""
        part = self.partition_for(record)
        self.stats.saw_record(record)
        log = self._logs[part]
        offset = self._base_offsets[part] + len(log)
        log.append(record)
        if self.retention is not None and len(log) > self.retention:
            overflow = len(log) - self.retention
            del log[:overflow]
            self._base_offsets[part] += overflow
            self.stats.dropped += overflow
            if self.on_drop is not None:
                self.on_drop(overflow)
        return part, offset

    def publish_many(self, records: Iterable[Record]) -> list[tuple[int, int]]:
        """Append a batch of records; returns one (partition, offset) per record.

        The batched fast path: each distinct key is hashed once, the stats
        are updated once for the whole batch (keyed counts through a C-level
        ``Counter``), appends run grouped per partition, and retention trims
        at most once per partition. Final log contents, offsets, base
        offsets and drop counts are identical to calling :meth:`publish`
        per record — only ``on_drop`` coalesces (one call per trimmed
        partition with the partition's total overflow, instead of one call
        per overflowing record).
        """
        batch = records if isinstance(records, list) else list(records)
        if not batch:
            return []
        n_parts = self.partitions
        stats = self.stats
        key_counts = Counter(record.key for record in batch)
        key_counts.pop(None, None)  # keyless records don't enter by_key
        by_key = stats.by_key
        for key, count in key_counts.items():
            by_key[key] = by_key.get(key, 0) + count
        counter = stats.records_in  # round-robin base for keyless records
        stats.records_in += len(batch)
        # Single routing pass: each distinct key is hashed once per batch.
        part_of_key = {key: _stable_hash(key) % n_parts for key in key_counts}
        if n_parts == 1:
            start = self._base_offsets[0] + len(self._logs[0])
            self._logs[0].extend(batch)
            results = [(0, offset) for offset in range(start, start + len(batch))]
        else:
            logs = self._logs
            next_offsets = [base + len(log) for base, log in zip(self._base_offsets, logs)]
            results = []
            add_result = results.append
            for record in batch:
                key = record.key
                part = part_of_key[key] if key is not None else counter % n_parts
                counter += 1
                offset = next_offsets[part]
                next_offsets[part] = offset + 1
                logs[part].append(record)
                add_result((part, offset))
        if self.retention is not None:
            for part in range(n_parts):
                log = self._logs[part]
                overflow = len(log) - self.retention
                if overflow > 0:
                    del log[:overflow]
                    self._base_offsets[part] += overflow
                    stats.dropped += overflow
                    if self.on_drop is not None:
                        self.on_drop(overflow)
        return results

    def size(self) -> int:
        """Total retained messages across partitions."""
        return sum(len(log) for log in self._logs)

    def end_offsets(self) -> list[int]:
        """The next-to-be-assigned offset of each partition."""
        return [base + len(log) for base, log in zip(self._base_offsets, self._logs)]

    def beginning_offsets(self) -> list[int]:
        """The earliest retained offset of each partition."""
        return list(self._base_offsets)

    def read(self, partition: int, from_offset: int, max_messages: int | None = None) -> list[TopicMessage]:
        """Read messages of a partition starting at ``from_offset``."""
        first_offset, records = self.read_records(partition, from_offset, max_messages)
        return [TopicMessage(first_offset + i, record) for i, record in enumerate(records)]

    def read_records(
        self, partition: int, from_offset: int, max_messages: int | None = None
    ) -> tuple[int, list[Record]]:
        """Batched read: (first offset, records) — one list slice, no wrapping.

        The fast path consumers use; offsets are implicit (``first_offset +
        index``) because a partition log is append-only and contiguous.
        """
        if not 0 <= partition < self.partitions:
            raise ValueError(f"partition {partition} out of range")
        log = self._logs[partition]
        base = self._base_offsets[partition]
        start = max(0, from_offset - base)
        end = len(log) if max_messages is None else min(len(log), start + max_messages)
        return base + start, log[start:end]


class Consumer:
    """A stateful reader of a topic within a consumer group.

    Each group tracks its own per-partition offsets, so the same topic can
    feed both the real-time layer and the batch layer independently —
    exactly how the paper's architecture re-reads enriched streams.
    """

    def __init__(self, topic: Topic, group: str):
        self.topic = topic
        self.group = group
        self._offsets = [0] * topic.partitions
        self._next_partition = 0  # where the next capped poll resumes scanning

    def poll(self, max_messages: int | None = None) -> list[Record]:
        """Fetch and acknowledge the next batch, interleaving partitions in offset order.

        The scan starts at a rotating partition: when ``max_messages`` caps
        a batch, the next poll resumes *after* the partition that exhausted
        the budget. A fixed scan order would let a busy low-numbered
        partition starve the rest indefinitely under sustained load.

        Batched fast path: each partition fetch is one log slice already in
        offset order, so when every fetched run is also non-decreasing in
        event time the runs are pre-merged with a k-way merge (or returned
        directly when only one partition produced messages) instead of
        re-sorting every message. Out-of-order runs fall back to the full
        stable sort; both paths order by ``(record.t, offset)`` with ties
        broken by partition scan order, so the delivered sequence is
        identical either way.
        """
        runs: list[tuple[int, list[Record]]] = []
        budget = max_messages
        n = self.topic.partitions
        start = self._next_partition
        for i in range(n):
            part = (start + i) % n
            first_offset, records = self.topic.read_records(part, self._offsets[part], budget)
            if records:
                self._offsets[part] = first_offset + len(records)
                runs.append((first_offset, records))
                if budget is not None:
                    budget -= len(records)
                    if budget <= 0:
                        self._next_partition = (part + 1) % n
                        break
        if not runs:
            return []
        if all(_time_ordered(records) for _, records in runs):
            if len(runs) == 1:
                return runs[0][1]
            merged = heapq.merge(
                *(zip(range(first, first + len(records)), records) for first, records in runs),
                key=lambda pair: (pair[1].t, pair[0]),
            )
            return [record for _, record in merged]
        fetched = [
            (record.t, first + i, record)
            for first, records in runs
            for i, record in enumerate(records)
        ]
        fetched.sort(key=lambda entry: (entry[0], entry[1]))
        return [record for _, _, record in fetched]

    def lag(self) -> int:
        """Messages published but not yet consumed by this group."""
        return sum(self.partition_lags())

    def partition_lags(self) -> list[int]:
        """Per-partition messages published but not yet consumed."""
        return [max(0, end - off) for end, off in zip(self.topic.end_offsets(), self._offsets)]

    def seek_to_beginning(self) -> None:
        """Rewind to the earliest retained offsets (batch-layer replay)."""
        self._offsets = self.topic.beginning_offsets()


class Broker:
    """The registry of topics. One per integrated system instance."""

    def __init__(self):
        self._topics: dict[str, Topic] = {}

    def create_topic(self, name: str, partitions: int = 1, retention: int | None = None) -> Topic:
        """Create a topic; re-creating an existing name is an error."""
        if name in self._topics:
            raise ValueError(f"topic {name!r} already exists")
        topic = Topic(name, partitions=partitions, retention=retention)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        """Look up an existing topic."""
        try:
            return self._topics[name]
        except KeyError:
            raise KeyError(f"unknown topic {name!r}; create it first") from None

    def get_or_create(self, name: str, partitions: int | None = None, retention: int | None = None) -> Topic:
        """Fetch a topic, creating it on first use.

        ``partitions``/``retention`` left as ``None`` accept whatever the
        existing topic has (and default to 1 / unbounded on creation).
        Passing explicit values against an existing topic that differs is
        an error — silently handing back a mismatched topic would corrupt
        key-to-partition routing or retention expectations.
        """
        topic = self._topics.get(name)
        if topic is None:
            return self.create_topic(name, partitions=partitions if partitions is not None else 1, retention=retention)
        if partitions is not None and topic.partitions != partitions:
            raise ValueError(
                f"topic {name!r} exists with {topic.partitions} partitions; requested {partitions}"
            )
        if retention is not None and topic.retention != retention:
            raise ValueError(
                f"topic {name!r} exists with retention={topic.retention}; requested {retention}"
            )
        return topic

    def consumer(self, topic_name: str, group: str) -> Consumer:
        """Open a consumer for ``group`` on the named topic."""
        return Consumer(self.topic(topic_name), group)

    def topics(self) -> Iterator[Topic]:
        return iter(self._topics.values())

    def publish(self, topic_name: str, record: Record) -> None:
        """Convenience: publish a record to a (pre-created) topic."""
        self.topic(topic_name).publish(record)

    def publish_many(self, topic_name: str, records: Iterable[Record]) -> int:
        """Convenience: batch-publish to a (pre-created) topic; returns the count."""
        return len(self.topic(topic_name).publish_many(records))


class TopicBatcher:
    """Coalesce per-record publishes into :meth:`Topic.publish_many` flushes.

    The glue the integrated real-time layer uses to publish per batch
    instead of per fix: records accumulate in a buffer that flushes
    automatically at ``batch_size`` and explicitly at end of run. Within a
    single-threaded run this is publish-order preserving, so topic
    contents, offsets and stats are identical to per-record publishing —
    only the point in time at which they appear moves to the flush.
    """

    __slots__ = ("topic", "batch_size", "_buffer")

    def __init__(self, topic: Topic, batch_size: int = 256):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.topic = topic
        self.batch_size = batch_size
        self._buffer: list[Record] = []

    def add(self, record: Record) -> None:
        self._buffer.append(record)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def pending(self) -> int:
        return len(self._buffer)

    def flush(self) -> int:
        """Publish everything buffered; returns the number published.

        The buffer is detached *before* handing it to
        :meth:`Topic.publish_many`: if the publish raises, a retried
        ``flush`` must not double-publish records the topic may already
        have appended. At-most-once is the batcher's contract — callers
        that need redelivery re-add the batch deliberately.
        """
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        return len(self.topic.publish_many(batch))


def _time_ordered(records: list[Record]) -> bool:
    """Whether a fetched run is non-decreasing in event time."""
    return all(records[i].t <= records[i + 1].t for i in range(len(records) - 1))


def _stable_hash(key: str) -> int:
    """A deterministic string hash (Python's builtin hash is salted per process)."""
    h = 2166136261
    for ch in key.encode("utf-8"):
        h = (h ^ ch) * 16777619 % (1 << 32)
    return h
