"""An in-process message broker: the Kafka surrogate.

datAcron components communicate through Apache Kafka topics
(Section 3). This module reproduces the semantics the architecture
relies on — named topics, partitions by key, multiple independent
consumer groups with their own offsets, bounded retention — in a
single deterministic process, so the integrated pipeline (repro.core)
can be wired exactly like Figure 2 and tested end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .record import Record, StreamStats


@dataclass(frozen=True, slots=True)
class TopicMessage:
    """A record as stored in a topic partition, with its offset."""

    offset: int
    record: Record


class Topic:
    """A named, partitioned, append-only log of records."""

    def __init__(self, name: str, partitions: int = 1, retention: int | None = None):
        if partitions < 1:
            raise ValueError("a topic needs at least one partition")
        self.name = name
        self.partitions = partitions
        self.retention = retention
        self._logs: list[list[TopicMessage]] = [[] for _ in range(partitions)]
        self._base_offsets = [0] * partitions  # offset of the first retained message
        self.stats = StreamStats()
        #: Optional observability hook: called with the overflow count each
        #: time retention trims messages. Attached by ``repro.obs.watch_broker``
        #: — streams stays obs-agnostic, like ``Operator.probe``.
        self.on_drop = None

    def __repr__(self) -> str:
        return f"Topic({self.name!r}, partitions={self.partitions}, size={self.size()})"

    def partition_for(self, record: Record) -> int:
        """Deterministic partition assignment: hash of key, else round-robin by count."""
        if record.key is not None:
            return _stable_hash(record.key) % self.partitions
        return self.stats.records_in % self.partitions

    def publish(self, record: Record) -> tuple[int, int]:
        """Append a record; returns (partition, offset)."""
        part = self.partition_for(record)
        self.stats.saw_record(record)
        log = self._logs[part]
        offset = self._base_offsets[part] + len(log)
        log.append(TopicMessage(offset, record))
        if self.retention is not None and len(log) > self.retention:
            overflow = len(log) - self.retention
            del log[:overflow]
            self._base_offsets[part] += overflow
            self.stats.dropped += overflow
            if self.on_drop is not None:
                self.on_drop(overflow)
        return part, offset

    def size(self) -> int:
        """Total retained messages across partitions."""
        return sum(len(log) for log in self._logs)

    def end_offsets(self) -> list[int]:
        """The next-to-be-assigned offset of each partition."""
        return [base + len(log) for base, log in zip(self._base_offsets, self._logs)]

    def read(self, partition: int, from_offset: int, max_messages: int | None = None) -> list[TopicMessage]:
        """Read messages of a partition starting at ``from_offset``."""
        if not 0 <= partition < self.partitions:
            raise ValueError(f"partition {partition} out of range")
        log = self._logs[partition]
        base = self._base_offsets[partition]
        start = max(0, from_offset - base)
        end = len(log) if max_messages is None else min(len(log), start + max_messages)
        return log[start:end]


class Consumer:
    """A stateful reader of a topic within a consumer group.

    Each group tracks its own per-partition offsets, so the same topic can
    feed both the real-time layer and the batch layer independently —
    exactly how the paper's architecture re-reads enriched streams.
    """

    def __init__(self, topic: Topic, group: str):
        self.topic = topic
        self.group = group
        self._offsets = [0] * topic.partitions
        self._next_partition = 0  # where the next capped poll resumes scanning

    def poll(self, max_messages: int | None = None) -> list[Record]:
        """Fetch and acknowledge the next batch, interleaving partitions in offset order.

        The scan starts at a rotating partition: when ``max_messages`` caps
        a batch, the next poll resumes *after* the partition that exhausted
        the budget. A fixed scan order would let a busy low-numbered
        partition starve the rest indefinitely under sustained load.
        """
        fetched: list[TopicMessage] = []
        budget = max_messages
        n = self.topic.partitions
        start = self._next_partition
        for i in range(n):
            part = (start + i) % n
            msgs = self.topic.read(part, self._offsets[part], budget)
            if msgs:
                self._offsets[part] = msgs[-1].offset + 1
                fetched.extend(msgs)
                if budget is not None:
                    budget -= len(msgs)
                    if budget <= 0:
                        self._next_partition = (part + 1) % n
                        break
        fetched.sort(key=lambda m: (m.record.t, m.offset))
        return [m.record for m in fetched]

    def lag(self) -> int:
        """Messages published but not yet consumed by this group."""
        return sum(self.partition_lags())

    def partition_lags(self) -> list[int]:
        """Per-partition messages published but not yet consumed."""
        return [max(0, end - off) for end, off in zip(self.topic.end_offsets(), self._offsets)]

    def seek_to_beginning(self) -> None:
        """Rewind to the earliest retained offsets (batch-layer replay)."""
        ends = self.topic.end_offsets()
        self._offsets = [ends[p] - len(self.topic.read(p, 0)) for p in range(self.topic.partitions)]


class Broker:
    """The registry of topics. One per integrated system instance."""

    def __init__(self):
        self._topics: dict[str, Topic] = {}

    def create_topic(self, name: str, partitions: int = 1, retention: int | None = None) -> Topic:
        """Create a topic; re-creating an existing name is an error."""
        if name in self._topics:
            raise ValueError(f"topic {name!r} already exists")
        topic = Topic(name, partitions=partitions, retention=retention)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        """Look up an existing topic."""
        try:
            return self._topics[name]
        except KeyError:
            raise KeyError(f"unknown topic {name!r}; create it first") from None

    def get_or_create(self, name: str, partitions: int | None = None, retention: int | None = None) -> Topic:
        """Fetch a topic, creating it on first use.

        ``partitions``/``retention`` left as ``None`` accept whatever the
        existing topic has (and default to 1 / unbounded on creation).
        Passing explicit values against an existing topic that differs is
        an error — silently handing back a mismatched topic would corrupt
        key-to-partition routing or retention expectations.
        """
        topic = self._topics.get(name)
        if topic is None:
            return self.create_topic(name, partitions=partitions if partitions is not None else 1, retention=retention)
        if partitions is not None and topic.partitions != partitions:
            raise ValueError(
                f"topic {name!r} exists with {topic.partitions} partitions; requested {partitions}"
            )
        if retention is not None and topic.retention != retention:
            raise ValueError(
                f"topic {name!r} exists with retention={topic.retention}; requested {retention}"
            )
        return topic

    def consumer(self, topic_name: str, group: str) -> Consumer:
        """Open a consumer for ``group`` on the named topic."""
        return Consumer(self.topic(topic_name), group)

    def topics(self) -> Iterator[Topic]:
        return iter(self._topics.values())

    def publish(self, topic_name: str, record: Record) -> None:
        """Convenience: publish a record to a (pre-created) topic."""
        self.topic(topic_name).publish(record)


def _stable_hash(key: str) -> int:
    """A deterministic string hash (Python's builtin hash is salted per process)."""
    h = 2166136261
    for ch in key.encode("utf-8"):
        h = (h ^ ch) * 16777619 % (1 << 32)
    return h
