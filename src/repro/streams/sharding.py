"""Sharded execution substrate: N broker/pipeline replicas behind one facade.

ROADMAP item 1: the broker and the pipeline runner are single-threaded,
so Figure-2 throughput is capped by one core. This module partitions a
stream *by key* across ``n_shards`` independent shards — each shard is a
full :class:`~repro.streams.broker.Broker` / :class:`~repro.streams.pipeline.Pipeline`
replica with partition-local operator state (KeyBy, windows, CEP
automata, per-entity predictors all key their state, so a key never
needs to see another shard) — and merges per-shard outputs and
watermarks back into one deterministic stream.

Correctness story (the same twin discipline as ``vectorized=False``):

* **routing** — a key is assigned to ``fnv1a(key) % n_shards``, the same
  deterministic hash topics use for partitions; keyless records
  round-robin. All records of one key land on one shard, so every keyed
  operator sees exactly the per-key subsequence it would see unsharded.
* **incremental runs** — each shard advances through a sequence of
  ``flush=False`` pipeline runs (one per poll); the stream-closing final
  watermark is emitted once per shard, at :meth:`ShardedPipeline.finish`.
  A shard merge is exactly a sequence of incremental runs, which is why
  the poll-boundary watermark semantics fixed in ``drain_consumer`` are
  the prerequisite for this module.
* **min-watermark merge** — the merged stream's event-time progress is
  ``min`` over the shards' assigner watermarks
  (:meth:`ShardedPipeline.min_watermark`), the standard multi-input
  alignment rule; merged outputs are ordered by ``(t, key)`` with each
  shard's per-key order preserved (stable sort), which reproduces the
  single-shard emission order for keyed outputs.
* **oracle** — ``n_shards=1`` routes everything to replica 0 in arrival
  order, so the single-shard path *is* the unsharded pipeline; the
  equivalence tests drive both and assert identical output.

Execution is either in-process (sequential, the deterministic oracle)
or process-parallel (:func:`run_sharded`'s ``parallel=True``), which
forks one worker per shard via ``multiprocessing`` — shards share
nothing, so the outputs are identical, only the wall clock changes.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

from .broker import Broker, Consumer, Topic, _stable_hash
from .pipeline import Pipeline, WatermarkAssigner
from .record import Record, StreamElement, Watermark

#: Builds one fresh pipeline replica; must be a module-level callable for
#: the process-parallel path (workers rebuild their replica, nothing with
#: operator state ever crosses the process boundary).
PipelineFactory = Callable[[], Pipeline]

#: Builds one fresh watermark assigner per shard (or None for none).
AssignerFactory = Callable[[], WatermarkAssigner]

# The observability plane (``obs=`` on ShardedPipeline / run_sharded) is
# duck-typed on purpose: the layering DAG forbids streams -> obs (obs
# instruments streams from the outside), so this module only relies on
# the protocol below — implemented by repro.obs.harvest.ShardedObsPlane:
#
#   obs.worker                      picklable per-shard recipe, with
#     .setup(shard, pipeline) -> s    shard-local obs state (parent or worker
#                                     process; instruments the replica)
#     .harvest(shard, s, wall,        picklable harvest of that state;
#              setup_seconds=...)       replica build cost rides beside the
#                                       wall, never inside it
#   obs.fold(harvests)              parent-side merge, called once per run
#
# Only ``obs.worker`` ever crosses the fork boundary.


def critical_path_speedup(walls: Sequence[float]) -> float:
    """Aggregate shard compute over the slowest shard.

    The speedup an N-core schedule of these shard walls achieves —
    runner-independent: it measures routing balance, not machine
    parallelism. ``0.0`` when no shard reported a positive wall.
    """
    slowest = max(walls, default=0.0)
    if slowest <= 0.0:
        return 0.0
    return sum(walls) / slowest


def shard_index(key: str, n_shards: int) -> int:
    """Deterministic shard assignment of a key (FNV-1a, like partitions)."""
    return _stable_hash(key) % n_shards


class ShardRouter:
    """Routes stream elements to shards: keyed by hash, keyless round-robin.

    Watermarks are *broadcast* — event-time progress is global, every
    shard must observe it or its windows would never close.
    """

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("a sharded stream needs at least one shard")
        self.n_shards = n_shards
        self._keyless = 0

    def shard_for(self, record: Record) -> int:
        """The shard one record lands on (advances the round-robin cursor)."""
        if record.key is not None:
            return shard_index(record.key, self.n_shards)
        shard = self._keyless % self.n_shards
        self._keyless += 1
        return shard

    def route(self, elements: Iterable[StreamElement]) -> list[list[StreamElement]]:
        """Split an element stream into per-shard streams, order-preserving."""
        shards: list[list[StreamElement]] = [[] for _ in range(self.n_shards)]
        for el in elements:
            if isinstance(el, Watermark):
                for shard in shards:
                    shard.append(el)
            else:
                shards[self.shard_for(el)].append(el)
        return shards


def merge_shard_outputs(per_shard: Sequence[list[Record]]) -> list[Record]:
    """Merge per-shard output lists into one ``(t, key)``-ordered stream.

    The sort is stable, and all records of one key come from one shard in
    that shard's emission order — so per-key subsequences are preserved
    exactly, and same-``(t, key)`` runs keep their shard-local order. For
    keyed streams this reproduces the single-shard window emission order
    (windows fire sorted by ``(start, key)``).
    """
    merged = [record for outputs in per_shard for record in outputs]
    merged.sort(key=lambda r: (r.t, r.key or ""))
    return merged


class ShardedBroker:
    """N independent brokers with key-routed topics.

    Topics exist on every shard; publishing routes each record to the
    shard its key hashes to (keyless records round-robin per topic).
    Consumers are per shard — a group drains shard-local logs with
    shard-local offsets, which is what gives operators state locality.
    """

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("a sharded broker needs at least one shard")
        self.n_shards = n_shards
        self.shards = [Broker() for _ in range(n_shards)]
        self._keyless: dict[str, int] = {}

    def create_topic(self, name: str, partitions: int = 1, retention: int | None = None) -> list[Topic]:
        """Create the topic on every shard; returns the per-shard topics."""
        return [b.create_topic(name, partitions=partitions, retention=retention) for b in self.shards]

    def topics_named(self, name: str) -> list[Topic]:
        """The per-shard replicas of one topic."""
        return [b.topic(name) for b in self.shards]

    def publish(self, topic_name: str, record: Record) -> int:
        """Publish one record to the shard its key routes to; returns the shard."""
        shard = self._route(topic_name, record)
        self.shards[shard].topic(topic_name).publish(record)
        return shard

    def publish_many(self, topic_name: str, records: Iterable[Record]) -> list[int]:
        """Batch publish with one routing pass; returns per-shard counts."""
        per_shard: list[list[Record]] = [[] for _ in range(self.n_shards)]
        for record in records:
            per_shard[self._route(topic_name, record)].append(record)
        for shard, batch in enumerate(per_shard):
            if batch:
                self.shards[shard].topic(topic_name).publish_many(batch)
        return [len(batch) for batch in per_shard]

    def consumers(self, topic_name: str, group: str) -> list[Consumer]:
        """One consumer per shard for ``group`` on the named topic."""
        return [b.consumer(topic_name, group) for b in self.shards]

    def size(self, topic_name: str) -> int:
        """Total retained messages of a topic across all shards."""
        return sum(t.size() for t in self.topics_named(topic_name))

    def _route(self, topic_name: str, record: Record) -> int:
        if record.key is not None:
            return shard_index(record.key, self.n_shards)
        cursor = self._keyless.get(topic_name, 0)
        self._keyless[topic_name] = cursor + 1
        return cursor % self.n_shards


class ShardedPipeline:
    """N pipeline replicas with per-shard watermarks and a merged output.

    Built from factories so every shard owns fresh operator state. Runs
    are incremental: each :meth:`run` call is a ``flush=False`` pipeline
    run per shard (the poll-boundary semantics), and :meth:`finish`
    closes every shard — final watermark, then operator flush — and
    returns the merged tail. :meth:`run_to_end` is the one-shot
    convenience combining both.
    """

    def __init__(
        self,
        factory: PipelineFactory,
        n_shards: int,
        watermark_factory: AssignerFactory | None = None,
        obs: Any = None,
    ):
        if n_shards < 1:
            raise ValueError("a sharded pipeline needs at least one shard")
        self.n_shards = n_shards
        self.router = ShardRouter(n_shards)
        self.obs = obs  # duck-typed observability plane, see module comment
        self.pipelines: list[Pipeline] = []
        self.assigners: list[WatermarkAssigner] | None = (
            [] if watermark_factory is not None else None
        )
        self._shard_obs: list[Any] | None = [] if obs is not None else None
        self._setup_s: list[float] = []
        for shard in range(n_shards):
            t0 = perf_counter()
            pipeline = factory()
            self.pipelines.append(pipeline)
            if self.assigners is not None:
                self.assigners.append(watermark_factory())
            if self._shard_obs is not None:
                self._shard_obs.append(obs.worker.setup(shard, pipeline))
            self._setup_s.append(perf_counter() - t0)
        self._finished = False

    def run(self, elements: Iterable[StreamElement], batch_size: int | None = None) -> list[Record]:
        """One incremental increment: route, run each shard ``flush=False``, merge."""
        if self._finished:
            raise RuntimeError("sharded pipeline already finished")
        per_shard: list[list[Record]] = []
        for shard, shard_elements in enumerate(self.router.route(elements)):
            assigner = self.assigners[shard] if self.assigners is not None else None
            per_shard.append(
                self.pipelines[shard].run(
                    shard_elements, watermarks=assigner, flush=False, batch_size=batch_size
                )
            )
        return merge_shard_outputs(per_shard)

    def finish(self) -> list[Record]:
        """Close every shard: final watermark, operator flush, merged tail."""
        if self._finished:
            raise RuntimeError("sharded pipeline already finished")
        self._finished = True
        per_shard: list[list[Record]] = []
        for shard, pipeline in enumerate(self.pipelines):
            out: list[Record] = []
            if self.assigners is not None:
                wm = self.assigners[shard].final_watermark()
                out.extend(r for r in pipeline.push(wm) if isinstance(r, Record))
            out.extend(pipeline.flush())
            per_shard.append(out)
        if self.obs is not None and self._shard_obs is not None:
            self.obs.fold(
                [
                    self.obs.worker.harvest(
                        shard,
                        state,
                        self.pipelines[shard].wall_seconds,
                        setup_seconds=self._setup_s[shard],
                    )
                    for shard, state in enumerate(self._shard_obs)
                ]
            )
        return merge_shard_outputs(per_shard)

    def run_to_end(self, elements: Iterable[StreamElement], batch_size: int | None = None) -> list[Record]:
        """One-shot: route + run + finish, merged into one output stream."""
        body = self.run(elements, batch_size=batch_size)
        return merge_shard_outputs([body, self.finish()])

    def min_watermark(self) -> float:
        """The merged stream's event-time progress: min over shard watermarks.

        ``-inf`` until every shard has seen a record — a straggling shard
        holds the merged watermark back, exactly like a lagging input
        channel in a multi-input operator.
        """
        if self.assigners is None:
            return -math.inf
        return min(a.current_watermark() for a in self.assigners)

    def wall_seconds(self) -> list[float]:
        """Per-shard wall seconds spent inside pipeline runs (setup excluded)."""
        return [p.wall_seconds for p in self.pipelines]

    def setup_seconds(self) -> list[float]:
        """Per-shard replica build seconds (factory + instrumentation).

        Reported apart from :meth:`wall_seconds` so
        :meth:`critical_path_speedup` compares steady-state compute —
        startup is a one-off cost the worker-pool path amortizes away.
        """
        return list(self._setup_s)

    def records_processed(self) -> list[int]:
        """Per-shard record counts (the routing balance)."""
        return [p.records_processed for p in self.pipelines]

    def critical_path_speedup(self) -> float:
        """Aggregate shard compute over the slowest shard: the speedup an
        N-core schedule of these shards achieves (runner-independent —
        it measures routing balance, not machine parallelism)."""
        return critical_path_speedup(self.wall_seconds())


def drain_sharded(
    consumers: Sequence[Consumer],
    sharded: ShardedPipeline,
    batch_size: int | None = None,
    max_messages: int | None = None,
) -> list[Record]:
    """Poll one consumer per shard to exhaustion through a sharded pipeline.

    Each round polls every shard once and runs the batches as one
    incremental increment — a shard merge is exactly a sequence of
    ``flush=False`` runs, closed once by :meth:`ShardedPipeline.finish`.
    Records are assumed already shard-routed (the consumers come from a
    :class:`ShardedBroker`), so batches bypass the router.
    """
    if len(consumers) != sharded.n_shards:
        raise ValueError(
            f"got {len(consumers)} consumers for {sharded.n_shards} shards"
        )
    out: list[Record] = []
    while True:
        per_shard: list[list[Record]] = []
        drained = True
        for shard, consumer in enumerate(consumers):
            batch = consumer.poll(max_messages)
            if batch:
                drained = False
            assigner = sharded.assigners[shard] if sharded.assigners is not None else None
            per_shard.append(
                sharded.pipelines[shard].run(
                    batch, watermarks=assigner, flush=False, batch_size=batch_size
                )
            )
        if drained:
            break
        out.extend(merge_shard_outputs(per_shard))
    out.extend(sharded.finish())
    return out


def _run_one_shard(
    payload: tuple[
        PipelineFactory, list[StreamElement], AssignerFactory | None, int | None, int, Any
    ],
) -> tuple[list[Record], float, Any]:
    """Worker body of the process-parallel path: build, run, harvest.

    Returns the shard's output records, its wall seconds, and — when an
    obs worker rode along — a picklable :class:`~repro.obs.harvest.
    ObsHarvest` of everything the shard measured, so the parent can fold
    it instead of losing it with the process. Replica build cost is
    timed separately and travels as the harvest's ``setup_seconds`` —
    it must never inflate the run wall the critical-path speedup is
    computed from.
    """
    factory, elements, watermark_factory, batch_size, shard, obs_worker = payload
    t0 = perf_counter()
    pipeline = factory()
    shard_obs = obs_worker.setup(shard, pipeline) if obs_worker is not None else None
    assigner = watermark_factory() if watermark_factory is not None else None
    setup_s = perf_counter() - t0
    out = pipeline.run(elements, watermarks=assigner, flush=True, batch_size=batch_size)
    harvest = (
        obs_worker.harvest(shard, shard_obs, pipeline.wall_seconds, setup_seconds=setup_s)
        if obs_worker is not None
        else None
    )
    return out, pipeline.wall_seconds, harvest


def run_sharded(
    factory: PipelineFactory,
    elements: Iterable[StreamElement],
    n_shards: int,
    watermark_factory: AssignerFactory | None = None,
    batch_size: int | None = None,
    parallel: bool = False,
    processes: int | None = None,
    obs: Any = None,
    pool: Any = None,
) -> list[Record]:
    """One-shot sharded execution of a bounded stream; returns merged output.

    ``parallel=False`` with ``pool=None`` (the default, and the
    determinism oracle) runs the shards sequentially in-process via
    :class:`ShardedPipeline`. ``parallel=True`` forks one worker per
    shard with ``multiprocessing`` — shards share nothing, so the merged
    output is identical; ``factory`` and ``watermark_factory`` must then
    be module-level callables and the record values picklable. With
    ``n_shards=1`` both paths reduce to the plain unsharded
    :meth:`Pipeline.run`.

    ``pool`` takes a persistent :class:`~repro.streams.workers.
    ShardWorkerPool` whose long-lived worker processes already hold the
    shard replicas: the one-shot run becomes run + finish + reset, so
    repeated calls amortize fork and replica-build cost. The pool must
    have been built from the same factories and shard count — the merged
    output is byte-identical to the sequential oracle either way.

    ``obs`` takes a duck-typed observability plane (see module comment;
    concretely :class:`repro.obs.harvest.ShardedObsPlane`): both paths
    instrument each shard replica, harvest its metrics/events/traces and
    fold them into the plane's parent-side registry — including each
    shard's wall seconds as ``shard.<i>.wall_s``, so the critical-path
    speedup is computable on the parallel path too. A pool folds into
    its *own* plane, so ``obs`` and ``pool`` are mutually exclusive.
    """
    if pool is not None:
        if pool.n_shards != n_shards:
            raise ValueError(
                f"pool has {pool.n_shards} shards, run_sharded asked for {n_shards}"
            )
        if obs is not None:
            raise ValueError(
                "pass the obs plane to ShardWorkerPool(obs=...), not alongside pool="
            )
        body = pool.run(elements, batch_size=batch_size)
        tail = pool.finish()
        pool.reset()
        return merge_shard_outputs([body, tail])
    if not parallel:
        sharded = ShardedPipeline(
            factory, n_shards, watermark_factory=watermark_factory, obs=obs
        )
        return sharded.run_to_end(elements, batch_size=batch_size)
    import multiprocessing

    routed = ShardRouter(n_shards).route(elements)
    obs_worker = obs.worker if obs is not None else None
    payloads = [
        (factory, shard_elements, watermark_factory, batch_size, shard, obs_worker)
        for shard, shard_elements in enumerate(routed)
    ]
    with multiprocessing.Pool(processes=processes or n_shards) as pool:
        results = pool.map(_run_one_shard, payloads)
    if obs is not None:
        obs.fold([harvest for _, _, harvest in results if harvest is not None])
    return merge_shard_outputs([out for out, _, _ in results])
