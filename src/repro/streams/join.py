"""Stream enrichment joins.

The datAcron real-time layer enriches the surveillance stream with
"dynamic and static context information (e.g., weather conditions,
maritime areas)". This module provides the dataflow primitive for it:
a temporal lookup join that maintains the latest reference value per
reference key (fed by a slowly-changing side stream like weather
updates) and enriches every fact-stream record with the current value
for its lookup key — the streaming analogue of a dimension-table join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .operators import Operator
from .record import Record, StreamElement


@dataclass(frozen=True, slots=True)
class Enriched:
    """A fact value paired with its looked-up context (None if absent)."""

    value: Any
    context: Any | None
    context_age_s: float | None


class TemporalLookupJoin(Operator):
    """Join a fact stream against the latest value of a reference stream.

    Records are discriminated by ``is_reference(value)``: reference records
    update the lookup table under ``reference_key(value)`` and are absorbed;
    fact records are emitted as :class:`Enriched` with the latest reference
    value under ``fact_key(value)`` (or None when nothing has arrived yet
    or the entry is older than ``max_age_s``).

    Feed it a single time-ordered stream (merge the two sources with
    :func:`repro.streams.merge_by_time`), which guarantees deterministic
    "latest value as of the fact's event time" semantics.
    """

    name = "temporal_lookup_join"

    def __init__(
        self,
        is_reference: Callable[[Any], bool],
        reference_key: Callable[[Any], str],
        fact_key: Callable[[Any], str],
        max_age_s: float | None = None,
    ):
        super().__init__()
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError("max_age_s must be positive (or None)")
        self.is_reference = is_reference
        self.reference_key = reference_key
        self.fact_key = fact_key
        self.max_age_s = max_age_s
        self._table: dict[str, tuple[float, Any]] = {}
        self.facts_enriched = 0
        self.facts_unmatched = 0

    def on_record(self, record: Record) -> list[StreamElement]:
        value = record.value
        if self.is_reference(value):
            self._table[self.reference_key(value)] = (record.t, value)
            return []
        entry = self._table.get(self.fact_key(value))
        context = None
        age: float | None = None
        if entry is not None:
            ref_t, ref_value = entry
            age = record.t - ref_t
            if self.max_age_s is None or age <= self.max_age_s:
                context = ref_value
        if context is None:
            self.facts_unmatched += 1
        else:
            self.facts_enriched += 1
        return [record.with_value(Enriched(value, context, age if context is not None else None))]

    def table_size(self) -> int:
        """Distinct reference keys currently held."""
        return len(self._table)
