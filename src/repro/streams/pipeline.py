"""Pipeline composition and execution.

A :class:`Pipeline` is a linear chain of operators (fan-in is handled
by merging sources, fan-out by running several pipelines off the same
topic through independent consumer groups — exactly how the datAcron
deployment splits the enriched stream between the predictor, the event
recognizer and the dashboard).

Watermarks can be injected automatically from record timestamps with a
bounded-out-of-orderness policy, mirroring Flink's
``BoundedOutOfOrdernessTimestampExtractor``.
"""

from __future__ import annotations

import heapq
import math
import time as _time
from typing import Any, Iterable, Iterator, Sequence

from .broker import Broker, Consumer
from .operators import Operator
from .record import Record, StreamElement, Watermark


class WatermarkAssigner:
    """Inject periodic watermarks lagging the max seen event time."""

    def __init__(self, out_of_orderness_s: float = 0.0, period_s: float = 60.0):
        if out_of_orderness_s < 0 or period_s <= 0:
            raise ValueError("invalid watermark parameters")
        self.out_of_orderness_s = out_of_orderness_s
        self.period_s = period_s
        self._max_t: float | None = None
        self._last_wm: float | None = None

    def feed(self, record: Record) -> list[StreamElement]:
        """Wrap a record, possibly followed by a fresh watermark."""
        out: list[StreamElement] = [record]
        self._max_t = record.t if self._max_t is None else max(self._max_t, record.t)
        wm_time = self._max_t - self.out_of_orderness_s
        if self._last_wm is None or wm_time - self._last_wm >= self.period_s:
            out.append(Watermark(wm_time))
            self._last_wm = wm_time
        return out

    def final_watermark(self) -> Watermark:
        """A watermark past every record seen (closes all windows)."""
        t = self._max_t if self._max_t is not None else 0.0
        return Watermark(t + self.out_of_orderness_s + 1.0)

    def current_watermark(self) -> float:
        """Where event time currently stands: ``max_t - out_of_orderness``.

        ``-inf`` before any record — the value a multi-input (or
        multi-shard) merge must take the minimum over.
        """
        if self._max_t is None:
            return -math.inf
        return self._max_t - self.out_of_orderness_s


class Pipeline:
    """A chain of operators executed element by element."""

    def __init__(self, operators: Sequence[Operator], name: str = "pipeline"):
        self.operators = list(operators)
        self.name = name
        self.wall_seconds = 0.0
        self.records_processed = 0

    def __repr__(self) -> str:
        chain = " -> ".join(op.name for op in self.operators)
        return f"Pipeline({self.name!r}: {chain})"

    def push(self, element: StreamElement) -> list[StreamElement]:
        """Push one element through the whole chain; returns final outputs."""
        batch: list[StreamElement] = [element]
        for op in self.operators:
            nxt: list[StreamElement] = []
            for el in batch:
                nxt.extend(op.process(el))
            batch = nxt
            if not batch:
                break
        return batch

    def push_batch(self, elements: list[StreamElement]) -> list[StreamElement]:
        """Push a batch through the chain, one operator hop per stage.

        The batched fast path: each operator sees the whole batch in one
        :meth:`~repro.streams.operators.Operator.process_batch` call instead
        of one :meth:`~repro.streams.operators.Operator.process` call per
        element. Element order is preserved through every hop, so outputs
        (and all operator state transitions) are identical to pushing the
        elements one by one.
        """
        batch = elements
        for op in self.operators:
            batch = op.process_batch(batch)
            if not batch:
                break
        return batch

    def run(
        self,
        elements: Iterable[StreamElement],
        watermarks: WatermarkAssigner | None = None,
        flush: bool = True,
        batch_size: int | None = None,
    ) -> list[Record]:
        """Run the pipeline over a bounded element stream; returns output records.

        ``batch_size`` switches to the batched fast path: elements (with
        their injected watermarks, in order) are pushed through the chain in
        chunks of up to ``batch_size`` via :meth:`push_batch`. Outputs are
        element-for-element identical to the per-element path.

        ``flush=False`` makes the run *incremental*: no stream-closing
        watermark is injected and no operator state is flushed, so a later
        run may continue the same stream. The assigner's
        :meth:`~WatermarkAssigner.final_watermark` (which asserts the stream
        is over) is pushed only on a flushing run — injecting it on every
        call would silently drop in-bound records arriving in the next
        increment as late.

        Wall-clock time is accumulated into :attr:`wall_seconds` so benches
        can report records/second throughput.
        """
        out: list[Record] = []
        start = _time.perf_counter()
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        pending: list[StreamElement] = []
        for el in elements:
            if isinstance(el, Record) and watermarks is not None:
                wrapped: list[StreamElement] = watermarks.feed(el)
            else:
                wrapped = [el]
            if batch_size is None:
                for w in wrapped:
                    if isinstance(w, Record):
                        self.records_processed += 1
                    out.extend(r for r in self.push(w) if isinstance(r, Record))
            else:
                pending.extend(wrapped)
                if len(pending) >= batch_size:
                    self.records_processed += sum(1 for w in pending if isinstance(w, Record))
                    out.extend(r for r in self.push_batch(pending) if isinstance(r, Record))
                    pending = []
        if pending:
            self.records_processed += sum(1 for w in pending if isinstance(w, Record))
            out.extend(r for r in self.push_batch(pending) if isinstance(r, Record))
        if flush:
            if watermarks is not None:
                out.extend(r for r in self.push(watermarks.final_watermark()) if isinstance(r, Record))
            out.extend(self.flush())
        self.wall_seconds += _time.perf_counter() - start
        return out

    def flush(self) -> list[Record]:
        """Flush every operator in order, cascading downstream."""
        out: list[Record] = []
        for i, op in enumerate(self.operators):
            pending = op.flush()
            for el in pending:
                batch = [el]
                for downstream in self.operators[i + 1 :]:
                    nxt: list[StreamElement] = []
                    for b in batch:
                        nxt.extend(downstream.process(b))
                    batch = nxt
                out.extend(r for r in batch if isinstance(r, Record))
        return out

    def throughput(self) -> float:
        """Records per wall-clock second over all :meth:`run` calls."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.records_processed / self.wall_seconds


def records_from_values(values: Iterable[tuple[float, Any]], key: str | None = None) -> Iterator[Record]:
    """Lift (t, value) pairs into records."""
    for t, value in values:
        yield Record(t, value, key)


def merge_by_time(*streams: Iterable[Record]) -> Iterator[Record]:
    """K-way merge of record streams by event time (stable across streams).

    This is the fan-in primitive: cross-stream processing (e.g. joining
    surveillance with weather updates) merges sources into one
    time-ordered stream before the operator chain.

    Equal timestamps are stable: ties go to the lower-numbered stream,
    and each stream's own order is preserved (only one entry per stream
    is ever in the heap, so ``(t, idx)`` totally orders the heap and the
    record itself is never compared).
    """
    entries = []
    for idx, s in enumerate(streams):
        it = iter(s)
        try:
            first = next(it)
        except StopIteration:
            continue
        entries.append((first.t, idx, first, it))
    heapq.heapify(entries)
    while entries:
        t, idx, rec, it = heapq.heappop(entries)
        yield rec
        try:
            nxt = next(it)
        except StopIteration:
            continue
        heapq.heappush(entries, (nxt.t, idx, nxt, it))


def drain_consumer(
    consumer: Consumer,
    pipeline: Pipeline,
    watermarks: WatermarkAssigner | None = None,
    batch_size: int | None = None,
) -> list[Record]:
    """Poll a broker consumer to exhaustion through a pipeline.

    Each poll is an *incremental* (``flush=False``) run, so records
    arriving in a later poll within the out-of-orderness bound are still
    in time — the stream-closing final watermark is pushed exactly once,
    after the poll loop, followed by the operator flush.

    ``batch_size`` selects the pipeline's batched fast path for each poll.
    """
    out: list[Record] = []
    while True:
        batch = consumer.poll()
        if not batch:
            break
        out.extend(pipeline.run(batch, watermarks=watermarks, flush=False, batch_size=batch_size))
    if watermarks is not None:
        out.extend(r for r in pipeline.push(watermarks.final_watermark()) if isinstance(r, Record))
    out.extend(pipeline.flush())
    return out


def publish_all(broker: Broker, topic_name: str, records: Iterable[Record]) -> int:
    """Publish a record stream to a topic; returns the number published.

    Uses the topic's batched :meth:`~repro.streams.broker.Topic.publish_many`
    fast path (identical offsets and stats to per-record publishing).
    """
    topic = broker.get_or_create(topic_name)
    return len(topic.publish_many(records))
