"""Stream records: the unit of data flowing through the dataflow engine.

Every message exchanged between datAcron components (Figure 2) travels
over Kafka topics as a timestamped, keyed payload. ``Record`` mirrors
that: an event-time timestamp, an optional partitioning key, and an
arbitrary value. ``Watermark`` carries event-time progress through the
dataflow so that windows can close deterministically — the same
mechanism Apache Flink uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generic, TypeVar

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class Record(Generic[T]):
    """A keyed, event-time-stamped stream element.

    ``ingest_wall_s`` is provenance, not payload: the wall-clock instant
    the record's source fix entered the system, stamped at ingest and
    carried through derived records so the end-to-end record latency
    (``e2e.record_latency_s``) can be measured wherever the record is
    finally consumed — including after a cross-process shard merge. It
    does not participate in equality: two records carrying the same data
    are the same record regardless of when they were ingested.
    """

    t: float
    value: T
    key: str | None = None
    ingest_wall_s: float | None = field(default=None, compare=False)

    def with_value(self, value: Any) -> "Record":
        """A copy carrying a different payload (same time, key, provenance)."""
        return Record(self.t, value, self.key, self.ingest_wall_s)

    def with_key(self, key: str | None) -> "Record[T]":
        """A copy carrying a different partitioning key."""
        return Record(self.t, self.value, key, self.ingest_wall_s)


@dataclass(frozen=True, slots=True)
class Watermark:
    """An assertion that no further records with ``t <= time`` will arrive."""

    time: float


#: What flows through operator channels: data or event-time progress.
StreamElement = Record | Watermark


@dataclass(slots=True)
class StreamStats:
    """Simple throughput counters kept by topics and operators."""

    records_in: int = 0
    records_out: int = 0
    watermarks: int = 0
    dropped: int = 0
    errors: int = 0
    by_key: dict[str, int] = field(default_factory=dict)

    def saw_record(self, record: Record) -> None:
        self.records_in += 1
        if record.key is not None:
            self.by_key[record.key] = self.by_key.get(record.key, 0) + 1

    def saw_records(self, records: list[Record]) -> None:
        """Batched :meth:`saw_record`: one counter bump for the whole batch."""
        self.records_in += len(records)
        by_key = self.by_key
        for record in records:
            if record.key is not None:
                by_key[record.key] = by_key.get(record.key, 0) + 1

    def emitted(self, n: int = 1) -> None:
        self.records_out += n
