"""Dataflow operators: the Flink-surrogate processing vocabulary.

Operators consume :class:`~repro.streams.record.StreamElement`s and emit
zero or more elements. They are synchronous and deterministic — a
record pushed in produces its outputs immediately — which makes the
latency and throughput of every paper component directly measurable.

The vocabulary covers what the datAcron real-time layer needs:
map / filter / flat-map, key-by re-keying, per-key stateful processing
(the basis of the in-situ statistics and the synopses generator) and
union of streams.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Generic, Iterable, TypeVar

from .record import Record, StreamElement, StreamStats, Watermark

T = TypeVar("T")
U = TypeVar("U")


class Operator:
    """Base class: push elements in with :meth:`process`, get outputs back."""

    name = "operator"

    def __init__(self):
        self.stats = StreamStats()
        #: Optional metrics hook (an ``repro.obs.OperatorProbe``); attached by
        #: ``repro.obs.instrument_operator`` — streams stays obs-agnostic.
        self.probe = None

    def process(self, element: StreamElement) -> list[StreamElement]:
        """Feed one element; returns emitted elements (watermarks pass through)."""
        if isinstance(element, Watermark):
            out = self.on_watermark(element)
            self.stats.watermarks += 1
            return out
        self.stats.saw_record(element)
        if self.probe is not None:
            start = perf_counter()
            out = self.on_record(element)
            elapsed = perf_counter() - start
        else:
            out = self.on_record(element)
        n_out = sum(1 for e in out if isinstance(e, Record))
        if self.probe is not None:
            self.probe.observe(n_out, elapsed)
        self.stats.emitted(n_out)
        return out

    def process_many(self, elements: Iterable[StreamElement]) -> list[StreamElement]:
        """Feed a batch of elements, concatenating outputs in order."""
        out: list[StreamElement] = []
        for el in elements:
            out.extend(self.process(el))
        return out

    def process_batch(self, elements: Iterable[StreamElement]) -> list[StreamElement]:
        """The batched fast path: feed many elements with batch-level accounting.

        Runs of consecutive records are handed to :meth:`on_batch` as one
        call — the whole run is timed once into the probe (``n_in`` set to
        the run length) and the stream stats are bumped once per run instead
        of once per record. Watermarks split runs so event-time ordering
        relative to records is preserved. Emitted elements, stats counters
        and probe totals are identical to calling :meth:`process` per
        element; only the probe's latency histogram sees per-run instead of
        per-record observations.
        """
        out: list[StreamElement] = []
        run: list[Record] = []
        for el in elements:
            if isinstance(el, Watermark):
                if run:
                    self._process_run(run, out)
                    run = []
                out.extend(self.on_watermark(el))
                self.stats.watermarks += 1
            else:
                run.append(el)
        if run:
            self._process_run(run, out)
        return out

    def _process_run(self, records: list[Record], out: list[StreamElement]) -> None:
        """Process one watermark-free run of records through :meth:`on_batch`."""
        self.stats.saw_records(records)
        if self.probe is not None:
            start = perf_counter()
            emitted = self.on_batch(records)
            elapsed = perf_counter() - start
        else:
            emitted = self.on_batch(records)
        n_out = sum(1 for e in emitted if isinstance(e, Record))
        if self.probe is not None:
            self.probe.observe(n_out, elapsed, n_in=len(records))
        self.stats.emitted(n_out)
        out.extend(emitted)

    def on_batch(self, records: list[Record]) -> list[StreamElement]:
        """Batched record kernel; default delegates to :meth:`on_record`.

        Subclasses with per-record logic cheap enough to inline (map,
        filter, ...) override this with a single-comprehension kernel.
        Overrides must keep per-record semantics bit-identical, including
        side effects such as drop counting.
        """
        out: list[StreamElement] = []
        for record in records:
            out.extend(self.on_record(record))
        return out

    def on_record(self, record: Record) -> list[StreamElement]:
        raise NotImplementedError

    def on_watermark(self, watermark: Watermark) -> list[StreamElement]:
        """Default: forward the watermark unchanged."""
        return [watermark]

    def flush(self) -> list[StreamElement]:
        """Emit anything still buffered (end-of-stream). Default: nothing."""
        return []

    def pending(self) -> int:
        """How many elements are buffered awaiting a watermark (queue depth)."""
        return 0


class Map(Operator):
    """Apply a function to every record value."""

    name = "map"

    def __init__(self, fn: Callable[[Any], Any]):
        super().__init__()
        self.fn = fn

    def on_record(self, record: Record) -> list[StreamElement]:
        return [record.with_value(self.fn(record.value))]

    def on_batch(self, records: list[Record]) -> list[StreamElement]:
        fn = self.fn
        return [r.with_value(fn(r.value)) for r in records]


class MapBatch(Operator):
    """Apply a whole-batch kernel to runs of record values.

    The plumbing that lets vectorized kernels (the numpy geo batch paths,
    columnar encoders, ...) run over a poll's worth of records in one
    call: the constructor takes a batch function ``list[values] ->
    list[values]`` that must return exactly one output value per input.
    The per-record path feeds the same kernel a one-element batch, so
    ``on_record`` stays the equivalence oracle for ``on_batch`` whenever
    the kernel is element-wise.
    """

    name = "map_batch"

    def __init__(self, batch_fn: Callable[[list[Any]], list[Any]]):
        super().__init__()
        self.batch_fn = batch_fn

    def on_record(self, record: Record) -> list[StreamElement]:
        values = self.batch_fn([record.value])
        if len(values) != 1:
            raise ValueError(f"batch kernel returned {len(values)} values for 1 record")
        return [record.with_value(values[0])]

    def on_batch(self, records: list[Record]) -> list[StreamElement]:
        values = self.batch_fn([r.value for r in records])
        if len(values) != len(records):
            raise ValueError(f"batch kernel returned {len(values)} values for {len(records)} records")
        return [r.with_value(v) for r, v in zip(records, values)]


class Filter(Operator):
    """Keep only records whose value satisfies the predicate."""

    name = "filter"

    def __init__(self, predicate: Callable[[Any], bool]):
        super().__init__()
        self.predicate = predicate

    def on_record(self, record: Record) -> list[StreamElement]:
        if self.predicate(record.value):
            return [record]
        self.stats.dropped += 1
        return []

    def on_batch(self, records: list[Record]) -> list[StreamElement]:
        predicate = self.predicate
        kept = [r for r in records if predicate(r.value)]
        self.stats.dropped += len(records) - len(kept)
        return kept


class FlatMap(Operator):
    """Apply a function returning an iterable; emit one record per item."""

    name = "flat_map"

    def __init__(self, fn: Callable[[Any], Iterable[Any]]):
        super().__init__()
        self.fn = fn

    def on_record(self, record: Record) -> list[StreamElement]:
        return [record.with_value(v) for v in self.fn(record.value)]

    def on_batch(self, records: list[Record]) -> list[StreamElement]:
        fn = self.fn
        return [r.with_value(v) for r in records for v in fn(r.value)]


class KeyBy(Operator):
    """Re-key records with a key extractor over the value."""

    name = "key_by"

    def __init__(self, key_fn: Callable[[Any], str]):
        super().__init__()
        self.key_fn = key_fn

    def on_record(self, record: Record) -> list[StreamElement]:
        return [record.with_key(self.key_fn(record.value))]

    def on_batch(self, records: list[Record]) -> list[StreamElement]:
        key_fn = self.key_fn
        return [r.with_key(key_fn(r.value)) for r in records]


class KeyedProcess(Operator, Generic[T]):
    """Per-key stateful processing: the workhorse of the real-time layer.

    ``init_state`` builds the state for a new key; ``fn(state, record)``
    returns an iterable of output values. The in-situ statistics operator
    and the synopses generator are built on this.
    """

    name = "keyed_process"

    def __init__(self, init_state: Callable[[], T], fn: Callable[[T, Record], Iterable[Any]]):
        super().__init__()
        self.init_state = init_state
        self.fn = fn
        self._states: dict[str, T] = {}

    def state_of(self, key: str) -> T:
        if key not in self._states:
            self._states[key] = self.init_state()
        return self._states[key]

    def keys(self) -> list[str]:
        return list(self._states)

    def on_record(self, record: Record) -> list[StreamElement]:
        if record.key is None:
            raise ValueError(f"{self.name} requires keyed records; got key=None at t={record.t}")
        state = self.state_of(record.key)
        return [record.with_value(v) for v in self.fn(state, record)]


class Union(Operator):
    """Pass-through used to merge several upstream channels into one."""

    name = "union"

    def on_record(self, record: Record) -> list[StreamElement]:
        return [record]

    def on_watermark(self, watermark: Watermark) -> list[StreamElement]:
        # A correct multi-input union holds the minimum watermark across inputs.
        # The pipeline runner merges inputs by time before reaching operators,
        # so forwarding is sufficient here; multi-input alignment lives in
        # :func:`repro.streams.pipeline.merge_by_time`.
        return [watermark]


class Peek(Operator):
    """Observe records without altering them (for probes and metrics)."""

    name = "peek"

    def __init__(self, fn: Callable[[Record], None]):
        super().__init__()
        self.fn = fn

    def on_record(self, record: Record) -> list[StreamElement]:
        self.fn(record)
        return [record]


class LatencyProbe(Operator):
    """Record-count and event-time-span probe used by the benchmark harness."""

    name = "latency_probe"

    def __init__(self):
        super().__init__()
        self.count = 0
        self.first_t: float | None = None
        self.max_t: float | None = None

    def on_record(self, record: Record) -> list[StreamElement]:
        self.count += 1
        if self.first_t is None:
            self.first_t = record.t
        # Track the max, not the last: out-of-order event times must not
        # shrink (or negate) the reported span.
        if self.max_t is None or record.t > self.max_t:
            self.max_t = record.t
        return [record]

    def event_time_span(self) -> float:
        if self.first_t is None or self.max_t is None:
            return 0.0
        return self.max_t - self.first_t
