"""Stream-processing substrate (S2): the Flink/Kafka surrogate.

Deterministic, single-process dataflow: records with event time,
watermark-driven windows, keyed stateful operators, and an in-process
partitioned broker with consumer groups.
"""

from .broker import Broker, Consumer, Topic, TopicBatcher, TopicMessage
from .join import Enriched, TemporalLookupJoin
from .operators import Filter, FlatMap, KeyBy, KeyedProcess, LatencyProbe, Map, MapBatch, Operator, Peek, Union
from .pipeline import Pipeline, WatermarkAssigner, drain_consumer, merge_by_time, publish_all, records_from_values
from .record import Record, StreamElement, StreamStats, Watermark
from .sharding import (
    ShardedBroker,
    ShardedPipeline,
    ShardRouter,
    critical_path_speedup,
    drain_sharded,
    merge_shard_outputs,
    run_sharded,
    shard_index,
)
from .windows import SlidingWindow, TumblingWindow, WindowResult, count_aggregate, mean_aggregate
from .workers import ShardWorkerDied, ShardWorkerError, ShardWorkerPool, WorkerHost

__all__ = [
    "Broker",
    "Consumer",
    "Enriched",
    "Filter",
    "FlatMap",
    "KeyBy",
    "KeyedProcess",
    "LatencyProbe",
    "Map",
    "MapBatch",
    "Operator",
    "Peek",
    "Pipeline",
    "Record",
    "ShardRouter",
    "ShardWorkerDied",
    "ShardWorkerError",
    "ShardWorkerPool",
    "ShardedBroker",
    "ShardedPipeline",
    "SlidingWindow",
    "WorkerHost",
    "StreamElement",
    "StreamStats",
    "TemporalLookupJoin",
    "Topic",
    "TopicBatcher",
    "TopicMessage",
    "TumblingWindow",
    "Union",
    "Watermark",
    "WatermarkAssigner",
    "WindowResult",
    "count_aggregate",
    "critical_path_speedup",
    "drain_consumer",
    "drain_sharded",
    "mean_aggregate",
    "merge_by_time",
    "merge_shard_outputs",
    "publish_all",
    "records_from_values",
    "run_sharded",
    "shard_index",
]
