"""Persistent shard worker pool: long-lived replicas, batched IPC.

``run_sharded(parallel=True)`` forks a fresh ``multiprocessing.Pool``
per call: every run re-pickles the factory and every worker rebuilds its
shard replica from scratch, so operator state, mask caches and warmed
buffers die between runs. That is the wrong shape for the realtime
serving pattern — many small incremental runs against replicas that
should stay hot. This module keeps one **long-lived process per shard**:
the replica pipeline is built once (inside the worker, nothing with
operator state ever crosses the process boundary), and each
:meth:`ShardWorkerPool.run` ships that poll's records as **one batched
pickled frame per shard** over a private duplex pipe, then gathers one
response frame per shard — merged output records, cumulative wall/record
accounting, the shard watermark, and a per-run delta
:class:`~repro.obs.harvest.ObsHarvest` the parent folds exactly as the
fork path folds its one-shot harvests.

Protocol (strict lockstep — at most one outstanding request per worker,
so the pipe can never deadlock; the parent scatters to all shards before
gathering, so shards compute concurrently):

==================  ==================================================
parent → worker     worker → parent
==================  ==================================================
(spawn)             ``("ready", setup_s)`` or ``("fatal", repr(exc))``
``("req", p)``      ``("ok", response)`` or ``("err", repr(exc))``
``("reset",)``      ``("ready", setup_s)`` or ``("err", repr(exc))``
``("close",)``      ``("closed",)``, then the process exits
==================  ==================================================

This table is cross-checked against ``tools/ipc_protocol.toml`` by the
``ipc-protocol`` checker: the spec is the machine-readable source of
truth, this table the human-readable one, and drift in either is a
lint error.

Liveness: a dead worker is detected at the next interaction with it and
surfaced as :class:`ShardWorkerDied` carrying the shard id; a *hung*
worker (alive but not replying — ``Connection.recv`` only raises for
dead peers) is bounded by ``request_timeout_s``: every wait for a reply
polls a deadline, and on expiry the host kills the worker and raises
:class:`ShardWorkerDied` too. An exception *inside* the replica comes
back as :class:`ShardWorkerError` and leaves the process alive. :meth:`ShardWorkerPool.restart_shard` respawns one
worker with a fresh replica; :meth:`ShardWorkerPool.close` (or the
context manager) shuts everything down cleanly.

The sequential :class:`~repro.streams.sharding.ShardedPipeline` stays
the byte-identical determinism oracle: routing, ``flush=False``
increments, ``finish`` and the ``(t, key)`` merge are the same code, so
N pool runs produce the same topic streams — and the per-run delta
harvests fold to the same counters — as the in-process twin.
"""

from __future__ import annotations

import math
import multiprocessing
import multiprocessing.connection
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, Protocol

from .pipeline import WatermarkAssigner
from .record import Record, StreamElement
from .sharding import (
    AssignerFactory,
    PipelineFactory,
    ShardRouter,
    critical_path_speedup,
    merge_shard_outputs,
)


#: Default reply deadline for :class:`ShardWorkerPool` — generous (a batched
#: frame plus a full replica rebuild fit comfortably) but finite, so a hung
#: worker surfaces as :class:`ShardWorkerDied` instead of wedging the parent.
DEFAULT_REQUEST_TIMEOUT_S = 300.0

#: Bounded wait for the ``("closed",)`` shutdown ack before reaping anyway.
_CLOSE_ACK_TIMEOUT_S = 5.0


class ShardWorkerDied(RuntimeError):
    """The shard's worker process is gone (crash, kill, closed pool).

    Raised at the next interaction with the dead worker — the pool does
    not monitor workers between requests. ``shard`` names the replica so
    callers can :meth:`ShardWorkerPool.restart_shard` it.
    """

    def __init__(self, shard: int, detail: str = ""):
        self.shard = shard
        suffix = f": {detail}" if detail else ""
        super().__init__(f"worker for shard {shard} died{suffix}")


class ShardWorkerError(RuntimeError):
    """The replica raised inside its worker; the process is still alive.

    The traceback text travels as ``detail`` — the exception object
    itself stays in the worker (it may hold unpicklable operator state).
    """

    def __init__(self, shard: int, detail: str):
        self.shard = shard
        super().__init__(f"shard {shard} worker request failed: {detail}")


class WorkerSpec(Protocol):
    """What a :class:`WorkerHost` hosts: a picklable replica recipe.

    ``setup`` builds the long-lived shard state once, inside the worker
    process; ``handle`` serves one request against it. The spec crosses
    the process boundary exactly once, at spawn — it must be picklable
    and hold no live state.
    """

    def setup(self, shard: int) -> Any: ...

    def handle(self, shard: int, state: Any, request: Any) -> Any: ...


def _worker_main(conn: multiprocessing.connection.Connection, spec: Any, shard: int) -> None:
    """Long-lived worker loop: build the replica once, serve lockstep requests."""
    try:
        t0 = perf_counter()
        state = spec.setup(shard)
        conn.send(("ready", perf_counter() - t0))
    # reprolint: disable=hygiene — IPC boundary: any setup failure must travel
    # to the parent as a ("fatal", repr) frame, never crash the worker silently.
    except Exception as exc:
        # Setup is fatal: report and exit, the parent raises ShardWorkerError.
        conn.send(("fatal", repr(exc)))
        conn.close()
        return
    while True:
        try:
            # reprolint: disable=resource-lifecycle — the worker idles here by
            # design between lockstep requests; liveness is owned by the parent
            # (its request deadline), and a dead parent surfaces as EOF below.
            msg = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone; nothing left to serve
        kind = msg[0]
        if kind == "close":
            conn.send(("closed",))
            break
        if kind == "reset":
            try:
                t0 = perf_counter()
                state = spec.setup(shard)
                conn.send(("ready", perf_counter() - t0))
            # reprolint: disable=hygiene — IPC boundary: rebuild failures must
            # travel as ("err", repr) frames and leave the worker serving.
            except Exception as exc:
                conn.send(("err", repr(exc)))
            continue
        if kind == "req":
            try:
                conn.send(("ok", spec.handle(shard, state, msg[1])))
            # reprolint: disable=hygiene — IPC boundary: replica exceptions must
            # travel as ("err", repr) frames (the exception object itself may
            # hold unpicklable operator state) and leave the worker serving.
            except Exception as exc:
                conn.send(("err", repr(exc)))
            continue
        conn.send(("err", f"unknown message kind {kind!r}"))
    conn.close()


class WorkerHost:
    """One long-lived worker process plus the parent end of its pipe.

    Requests are strict lockstep (send one frame, receive one frame), so
    there is never more than one message in flight per worker and the
    duplex pipe cannot deadlock. Every interaction checks liveness
    first: a dead process surfaces as :class:`ShardWorkerDied` naming
    the shard.

    ``setup_s`` accumulates replica build seconds across the initial
    spawn and every :meth:`reset`/:meth:`restart` — reported apart from
    run walls so speedups compare steady state.

    ``request_timeout_s`` bounds every wait for a reply frame: a worker
    that is alive but hung (deadlocked replica, wedged syscall) would
    otherwise block the parent forever, because ``Connection.recv``
    only raises for *dead* peers. On deadline the host terminates the
    worker (the lockstep is desynchronised — a late reply could pair
    with the wrong request) and raises :class:`ShardWorkerDied` naming
    the shard, so callers can :meth:`restart`. ``None`` disables the
    deadline (the pre-timeout behavior).
    """

    def __init__(
        self,
        spec: Any,
        shard: int,
        context: Any = None,
        start: bool = True,
        request_timeout_s: float | None = None,
    ):
        self.spec = spec
        self.shard = shard
        self.request_timeout_s = request_timeout_s
        self._ctx = context if context is not None else multiprocessing.get_context()
        self._proc: Any = None
        self._conn: multiprocessing.connection.Connection | None = None
        self.setup_s = 0.0
        if start:
            self.start()

    def start(self) -> None:
        """Spawn the process and block until its replica is built."""
        if self.alive():
            raise RuntimeError(f"worker for shard {self.shard} is already running")
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.spec, self.shard),
            name=f"shard-worker-{self.shard}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._proc, self._conn = proc, parent_conn
        kind, payload = self._recv()
        if kind == "ready":
            self.setup_s += payload
        elif kind == "fatal":
            # The worker reported a setup failure and is exiting; reap it.
            self._terminate()
            raise ShardWorkerError(self.shard, str(payload))
        else:
            self._terminate()
            raise ShardWorkerDied(
                self.shard, f"protocol violation: unexpected spawn reply {kind!r}"
            )

    def alive(self) -> bool:
        """Whether the worker process is currently running."""
        return self._proc is not None and self._proc.is_alive()

    def send(self, payload: Any) -> None:
        """Ship one request frame (batched records pickle as one message)."""
        self._ensure_alive()
        assert self._conn is not None
        try:
            self._conn.send(("req", payload))
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerDied(self.shard, repr(exc)) from exc

    def receive(self) -> Any:
        """Block for the matching response frame of the last :meth:`send`."""
        kind, payload = self._recv()
        if kind == "ok":
            return payload
        if kind == "err":
            raise ShardWorkerError(self.shard, str(payload))
        self._terminate()
        raise ShardWorkerDied(
            self.shard, f"protocol violation: unexpected request reply {kind!r}"
        )

    def request(self, payload: Any) -> Any:
        """Lockstep convenience: :meth:`send` then :meth:`receive`."""
        self.send(payload)
        return self.receive()

    def reset(self) -> None:
        """Rebuild the replica in place (same process, fresh state)."""
        self._ensure_alive()
        assert self._conn is not None
        try:
            self._conn.send(("reset",))
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerDied(self.shard, repr(exc)) from exc
        kind, payload = self._recv()
        if kind == "ready":
            self.setup_s += payload
        elif kind == "err":
            raise ShardWorkerError(self.shard, str(payload))
        else:
            self._terminate()
            raise ShardWorkerDied(
                self.shard, f"protocol violation: unexpected reset reply {kind!r}"
            )

    def restart(self) -> None:
        """Kill the process (alive or not) and spawn a fresh replica."""
        self._terminate()
        self.start()

    def close(self) -> None:
        """Clean shutdown: ask the worker to exit, then reap it. Idempotent."""
        if self._proc is None:
            return
        if self._proc.is_alive() and self._conn is not None:
            try:
                self._conn.send(("close",))
                # Bounded wait for the ("closed",) ack (or EOF if it raced
                # exit) — shutdown must not hang on a wedged worker; the
                # _terminate() below reaps it regardless of what arrived.
                if self._conn.poll(_CLOSE_ACK_TIMEOUT_S):
                    self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass  # reprolint: disable=hygiene — best-effort shutdown: the worker may already be gone
        self._terminate()

    def _terminate(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc.join(timeout=5.0)
            self._proc = None

    def _ensure_alive(self) -> None:
        if not self.alive():
            raise ShardWorkerDied(self.shard)

    def _recv(self) -> tuple[str, Any]:
        assert self._conn is not None
        try:
            if self.request_timeout_s is not None and not self._conn.poll(
                self.request_timeout_s
            ):
                # The worker is alive but did not reply in time. The
                # lockstep is now desynchronised — a late reply could pair
                # with the wrong request — so the only safe recovery is to
                # kill the worker and report it dead.
                self._terminate()
                raise ShardWorkerDied(
                    self.shard,
                    f"no reply within {self.request_timeout_s}s (worker hung)",
                )
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerDied(self.shard, repr(exc)) from exc


@dataclass(slots=True)
class _PipelineReplica:
    """Worker-side state of one pipeline shard: built once, reused per run."""

    pipeline: Any
    assigner: WatermarkAssigner | None
    obs_state: Any
    setup_s: float
    prev_harvest: Any = None


@dataclass(frozen=True, slots=True)
class _PipelineWorkerSpec:
    """Picklable recipe for a pipeline shard replica (see :class:`WorkerSpec`).

    Holds only module-level factories and the obs plane's picklable
    ``worker`` recipe — the live pipeline, assigner and registries exist
    solely inside the worker process.
    """

    factory: PipelineFactory
    watermark_factory: AssignerFactory | None = None
    obs_worker: Any = None
    batch_size: int | None = None

    def setup(self, shard: int) -> _PipelineReplica:
        t0 = perf_counter()
        pipeline = self.factory()
        obs_state = (
            self.obs_worker.setup(shard, pipeline) if self.obs_worker is not None else None
        )
        assigner = (
            self.watermark_factory() if self.watermark_factory is not None else None
        )
        return _PipelineReplica(
            pipeline=pipeline,
            assigner=assigner,
            obs_state=obs_state,
            setup_s=perf_counter() - t0,
        )

    def handle(self, shard: int, replica: _PipelineReplica, request: Any) -> dict[str, Any]:
        kind = request[0]
        if kind == "run":
            _, elements, batch_size = request
            out = replica.pipeline.run(
                elements,
                watermarks=replica.assigner,
                flush=False,
                batch_size=batch_size if batch_size is not None else self.batch_size,
            )
        elif kind == "finish":
            out = []
            if replica.assigner is not None:
                wm = replica.assigner.final_watermark()
                out.extend(r for r in replica.pipeline.push(wm) if isinstance(r, Record))
            out.extend(replica.pipeline.flush())
        else:
            raise ValueError(f"unknown pipeline request {kind!r}")
        harvest = None
        if self.obs_worker is not None:
            current = self.obs_worker.harvest(
                shard,
                replica.obs_state,
                replica.pipeline.wall_seconds,
                setup_seconds=replica.setup_s,
            )
            harvest = current.delta(replica.prev_harvest)
            replica.prev_harvest = current
        return {
            "records": out,
            "wall_s": replica.pipeline.wall_seconds,
            "records_processed": replica.pipeline.records_processed,
            "watermark": (
                replica.assigner.current_watermark()
                if replica.assigner is not None
                else -math.inf
            ),
            "harvest": harvest,
        }


@dataclass(slots=True)
class _ShardAccount:
    """Parent-side view of one worker's cumulative accounting."""

    wall_s: float = 0.0
    records: int = 0
    watermark: float = field(default=-math.inf)


class ShardWorkerPool:
    """N long-lived worker processes, one pre-built pipeline replica each.

    The process-backed twin of :class:`~repro.streams.sharding.
    ShardedPipeline`, with the same facade — :meth:`run` increments,
    single-use :meth:`finish`, :meth:`run_to_end`, min-watermark merge,
    per-shard wall/records and :meth:`critical_path_speedup` — but the
    replicas persist across runs, so repeated small runs (the realtime
    serving pattern) pay IPC only, never fork or rebuild. The sequential
    ``ShardedPipeline`` is the byte-identical determinism oracle.

    ``obs`` takes the same duck-typed plane as the rest of the substrate
    (see the ``repro.streams.sharding`` module comment): each run folds
    the workers' per-run **delta** harvests, which accumulate to exactly
    the counters the oracle's one-shot fold reports.

    Use as a context manager (or call :meth:`close`) so worker processes
    never outlive the stream.

    ``request_timeout_s`` (default :data:`DEFAULT_REQUEST_TIMEOUT_S`)
    bounds every wait for a shard's reply: a hung-but-alive worker
    surfaces as :class:`ShardWorkerDied` instead of wedging the parent,
    and :meth:`restart_shard` recovers it. ``None`` restores the old
    unbounded behavior.
    """

    def __init__(
        self,
        factory: PipelineFactory,
        n_shards: int,
        watermark_factory: AssignerFactory | None = None,
        obs: Any = None,
        batch_size: int | None = None,
        context: Any = None,
        request_timeout_s: float | None = DEFAULT_REQUEST_TIMEOUT_S,
    ):
        if n_shards < 1:
            raise ValueError("a worker pool needs at least one shard")
        self.n_shards = n_shards
        self.router = ShardRouter(n_shards)
        self.obs = obs
        self._has_assigners = watermark_factory is not None
        spec = _PipelineWorkerSpec(
            factory=factory,
            watermark_factory=watermark_factory,
            obs_worker=obs.worker if obs is not None else None,
            batch_size=batch_size,
        )
        self.hosts = [
            WorkerHost(
                spec, shard, context=context, request_timeout_s=request_timeout_s
            )
            for shard in range(n_shards)
        ]
        self._accounts = [_ShardAccount() for _ in range(n_shards)]
        self._finished = False
        self._closed = False
        self.runs = 0

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down cleanly. Idempotent."""
        self._closed = True
        for host in self.hosts:
            host.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def restart_shard(self, shard: int) -> None:
        """Respawn one worker with a fresh replica (after ShardWorkerDied).

        The replica's operator state is rebuilt from the factory, so the
        restarted shard starts a *new* stream — mid-stream restarts
        trade the determinism oracle for availability, which is why the
        restart is explicit, never automatic.
        """
        self.hosts[shard].restart()
        self._accounts[shard] = _ShardAccount()

    def reset(self) -> None:
        """Rebuild every replica in place and re-arm the pool for a new
        stream — the amortization point: processes persist, only the
        (cheap) factory state is rebuilt."""
        for host in self.hosts:
            host.reset()
        self.router = ShardRouter(self.n_shards)
        self._accounts = [_ShardAccount() for _ in range(self.n_shards)]
        self._finished = False

    # -- execution ---------------------------------------------------------------

    def run(self, elements: Iterable[StreamElement], batch_size: int | None = None) -> list[Record]:
        """One incremental increment: route, scatter one frame per shard,
        gather, fold obs deltas, merge — same semantics as
        :meth:`ShardedPipeline.run`."""
        self._ensure_serving()
        routed = self.router.route(elements)
        return self._dispatch([("run", shard_elements, batch_size) for shard_elements in routed])

    def finish(self) -> list[Record]:
        """Close every shard: final watermark, operator flush, merged tail.

        Single-use like the oracle's — :meth:`reset` re-arms the pool
        for the next stream without respawning processes.
        """
        self._ensure_serving()
        self._finished = True
        return self._dispatch([("finish",)] * self.n_shards)

    def run_to_end(self, elements: Iterable[StreamElement], batch_size: int | None = None) -> list[Record]:
        """One-shot: run + finish, merged into one output stream."""
        body = self.run(elements, batch_size=batch_size)
        return merge_shard_outputs([body, self.finish()])

    def _dispatch(self, payloads: list[Any]) -> list[Record]:
        # Scatter everything before gathering anything: all shards
        # compute concurrently, the parent blocks on the slowest.
        for host, payload in zip(self.hosts, payloads):
            host.send(payload)
        responses = [host.receive() for host in self.hosts]
        harvests = []
        per_shard: list[list[Record]] = []
        for account, resp in zip(self._accounts, responses):
            per_shard.append(resp["records"])
            account.wall_s = resp["wall_s"]
            account.records = resp["records_processed"]
            account.watermark = resp["watermark"]
            if resp["harvest"] is not None:
                harvests.append(resp["harvest"])
        if self.obs is not None and harvests:
            self.obs.fold(harvests)
        self.runs += 1
        return merge_shard_outputs(per_shard)

    def _ensure_serving(self) -> None:
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if self._finished:
            raise RuntimeError("worker pool already finished this stream; reset() to start a new one")

    # -- accounting --------------------------------------------------------------

    def min_watermark(self) -> float:
        """Merged event-time progress: min over shard watermarks (``-inf``
        without assigners or before every shard has seen a record)."""
        if not self._has_assigners:
            return -math.inf
        return min(account.watermark for account in self._accounts)

    def wall_seconds(self) -> list[float]:
        """Per-shard wall seconds spent inside pipeline runs (setup excluded)."""
        return [account.wall_s for account in self._accounts]

    def setup_seconds(self) -> list[float]:
        """Per-shard replica build seconds, accumulated across spawn /
        reset / restart — the cost the pool amortizes, reported apart
        from run walls."""
        return [host.setup_s for host in self.hosts]

    def records_processed(self) -> list[int]:
        """Per-shard record counts (the routing balance)."""
        return [account.records for account in self._accounts]

    def critical_path_speedup(self) -> float:
        """Aggregate shard compute over the slowest shard, from steady-state
        run walls only — replica/process startup is excluded by
        construction (see :meth:`setup_seconds`)."""
        return critical_path_speedup(self.wall_seconds())
