"""Event-time windowing driven by watermarks.

The low-level event detector and the VA time-series backends aggregate
streams over event-time windows (e.g. the hourly vessel counts of
Figure 10). Windows close when a watermark passes their end — the
standard Flink semantics — so results are deterministic regardless of
arrival interleaving, and late records (behind the watermark) are
counted and dropped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from .operators import Operator
from .record import Record, StreamElement, Watermark


@dataclass(frozen=True, slots=True)
class WindowResult:
    """The aggregate emitted when a window closes."""

    key: str | None
    start: float
    end: float
    value: Any


class TumblingWindow(Operator):
    """Fixed-size, non-overlapping event-time windows, per key.

    ``aggregate(values) -> value`` runs when the window closes. Window
    boundaries are aligned to multiples of ``size_s`` (plus ``offset_s``).
    """

    name = "tumbling_window"

    def __init__(
        self,
        size_s: float,
        aggregate: Callable[[list[Any]], Any],
        offset_s: float = 0.0,
        allowed_lateness_s: float = 0.0,
    ):
        super().__init__()
        if size_s <= 0:
            raise ValueError("window size must be positive")
        self.size_s = size_s
        self.offset_s = offset_s
        self.aggregate = aggregate
        self.allowed_lateness_s = allowed_lateness_s
        # (key, window_start) -> buffered values
        self._buffers: dict[tuple[str | None, float], list[Any]] = {}
        self.late_records = 0
        self._watermark = -math.inf
        self._min_event_time = math.inf
        self._max_event_time = -math.inf
        #: Optional observability hook: called with each record dropped as
        #: late. Attached by ``repro.obs.watch_window``; streams stays
        #: obs-agnostic, like ``Operator.probe``.
        self.on_late = None

    def window_start(self, t: float) -> float:
        return math.floor((t - self.offset_s) / self.size_s) * self.size_s + self.offset_s

    def watermark_lag_s(self) -> float:
        """How far the watermark trails the newest event seen (0 before data).

        A growing lag means records keep arriving but no watermark
        advances to close their windows — buffered state only grows.
        Before any watermark arrives, the lag is the event-time span
        seen so far (the whole stream is unclosed).
        """
        if math.isinf(self._max_event_time):
            return 0.0
        floor = self._min_event_time if math.isinf(self._watermark) else self._watermark
        return max(0.0, self._max_event_time - floor)

    def on_record(self, record: Record) -> list[StreamElement]:
        self._min_event_time = min(self._min_event_time, record.t)
        self._max_event_time = max(self._max_event_time, record.t)
        start = self.window_start(record.t)
        if start + self.size_s + self.allowed_lateness_s <= self._watermark:
            self.late_records += 1
            self.stats.dropped += 1
            if self.on_late is not None:
                self.on_late(record)
            return []
        self._buffers.setdefault((record.key, start), []).append(record.value)
        return []

    def on_watermark(self, watermark: Watermark) -> list[StreamElement]:
        self._watermark = max(self._watermark, watermark.time)
        return self._fire(lambda start: start + self.size_s + self.allowed_lateness_s <= self._watermark) + [watermark]

    def flush(self) -> list[StreamElement]:
        """Close every remaining window (end of stream)."""
        return self._fire(lambda start: True)

    def pending(self) -> int:
        return sum(len(v) for v in self._buffers.values())

    def _fire(self, should_close: Callable[[float], bool]) -> list[StreamElement]:
        ready = sorted(
            (k for k in self._buffers if should_close(k[1])),
            key=lambda k: (k[1], k[0] or ""),
        )
        out: list[StreamElement] = []
        for key, start in ready:
            values = self._buffers.pop((key, start))
            result = WindowResult(key, start, start + self.size_s, self.aggregate(values))
            out.append(Record(t=start + self.size_s, value=result, key=key))
            self.stats.emitted()
        return out


class SlidingWindow(Operator):
    """Overlapping event-time windows of ``size_s`` sliding every ``slide_s``.

    ``allowed_lateness_s`` has the same semantics as in
    :class:`TumblingWindow`: a window only closes (and its records are
    only considered late) once the watermark passes window end *plus* the
    allowance — so the two window types drop identical records on the
    same stream.

    ``offset_s`` shifts window-start alignment exactly as in
    :class:`TumblingWindow`: starts fall on multiples of ``slide_s`` plus
    the offset, so with ``slide_s == size_s`` a sliding window is
    element-for-element the tumbling window with the same offset.
    """

    name = "sliding_window"

    def __init__(
        self,
        size_s: float,
        slide_s: float,
        aggregate: Callable[[list[Any]], Any],
        offset_s: float = 0.0,
        allowed_lateness_s: float = 0.0,
    ):
        super().__init__()
        if size_s <= 0 or slide_s <= 0:
            raise ValueError("window size and slide must be positive")
        if slide_s > size_s:
            raise ValueError("slide larger than size leaves gaps; use a TumblingWindow")
        self.size_s = size_s
        self.slide_s = slide_s
        self.aggregate = aggregate
        self.offset_s = offset_s
        self.allowed_lateness_s = allowed_lateness_s
        self._buffers: dict[tuple[str | None, float], list[Any]] = {}
        self._watermark = -math.inf
        self._min_event_time = math.inf
        self._max_event_time = -math.inf
        self.late_records = 0
        #: Optional observability hook; see :class:`TumblingWindow`.
        self.on_late = None

    def watermark_lag_s(self) -> float:
        """Watermark lag; same semantics as :meth:`TumblingWindow.watermark_lag_s`."""
        if math.isinf(self._max_event_time):
            return 0.0
        floor = self._min_event_time if math.isinf(self._watermark) else self._watermark
        return max(0.0, self._max_event_time - floor)

    def _starts_for(self, t: float) -> Iterable[float]:
        """All window starts whose [start, start+size) contains t."""
        last_start = math.floor((t - self.offset_s) / self.slide_s) * self.slide_s + self.offset_s
        start = last_start
        while start > t - self.size_s:
            yield start
            start -= self.slide_s

    def on_record(self, record: Record) -> list[StreamElement]:
        self._min_event_time = min(self._min_event_time, record.t)
        self._max_event_time = max(self._max_event_time, record.t)
        added_any = False
        for start in self._starts_for(record.t):
            if start + self.size_s + self.allowed_lateness_s <= self._watermark:
                continue
            self._buffers.setdefault((record.key, start), []).append(record.value)
            added_any = True
        if not added_any:
            self.late_records += 1
            self.stats.dropped += 1
            if self.on_late is not None:
                self.on_late(record)
        return []

    def on_watermark(self, watermark: Watermark) -> list[StreamElement]:
        self._watermark = max(self._watermark, watermark.time)
        ready = sorted(
            (k for k in self._buffers if k[1] + self.size_s + self.allowed_lateness_s <= self._watermark),
            key=lambda k: (k[1], k[0] or ""),
        )
        out: list[StreamElement] = []
        for key, start in ready:
            values = self._buffers.pop((key, start))
            result = WindowResult(key, start, start + self.size_s, self.aggregate(values))
            out.append(Record(t=start + self.size_s, value=result, key=key))
            self.stats.emitted()
        out.append(watermark)
        return out

    def flush(self) -> list[StreamElement]:
        ready = sorted(self._buffers, key=lambda k: (k[1], k[0] or ""))
        out: list[StreamElement] = []
        for key, start in ready:
            values = self._buffers.pop((key, start))
            out.append(Record(t=start + self.size_s, value=WindowResult(key, start, start + self.size_s, self.aggregate(values)), key=key))
        return out

    def pending(self) -> int:
        return sum(len(v) for v in self._buffers.values())


def count_aggregate(values: list[Any]) -> int:
    """The most common window aggregate: element count."""
    return len(values)


def mean_aggregate(values: list[float]) -> float:
    """Arithmetic mean of numeric window contents (nan for empty)."""
    return sum(values) / len(values) if values else math.nan
