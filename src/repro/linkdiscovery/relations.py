"""Spatio-temporal relations and link records (Section 4.2.4).

The datAcron link-discovery component detects spatio-temporal and
proximity relations — principally ``dul:within`` and ``geosparql:nearTo``
— between moving entities (critical points) and stationary entities
(regions, ports), as well as among moving entities. This module defines
the relation predicates and the link record produced when a pair
satisfies one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasources.ports import Port
from ..datasources.regions import Region
from ..geo import PositionFix, haversine_m

#: Relation identifiers (matching the paper's reported predicates).
WITHIN = "dul:within"
NEAR_TO = "geosparql:nearTo"


@dataclass(frozen=True, slots=True)
class Link:
    """A discovered relation between two entities at a point in time."""

    source_id: str       # the moving entity / critical point id
    target_id: str       # the region / port / other moving entity id
    relation: str        # WITHIN | NEAR_TO
    t: float
    distance_m: float = 0.0


def point_within_region(fix: PositionFix, region: Region) -> bool:
    """The ``dul:within`` refinement: the exact point-in-polygon predicate.

    Deliberately evaluates the full geometry (no bbox shortcut): in the
    paper's framework all pruning is the responsibility of the blocking
    and cell-mask stages, and refinement pays the true geometric cost.
    """
    return region.polygon.contains_exact(fix.lon, fix.lat)


def point_near_region(fix: PositionFix, region: Region, threshold_m: float) -> tuple[bool, float]:
    """The ``geosparql:nearTo`` refinement against a region boundary."""
    d = region.polygon.distance_to_point_m(fix.lon, fix.lat)
    return d <= threshold_m, d


def point_near_port(fix: PositionFix, port: Port, threshold_m: float) -> tuple[bool, float]:
    """nearTo against a port: within threshold of the harbour point."""
    d = haversine_m(fix.lon, fix.lat, port.location.lon, port.location.lat)
    return d <= threshold_m, d


def points_near(a: PositionFix, b: PositionFix, space_m: float, time_s: float) -> tuple[bool, float]:
    """Spatio-temporal proximity between two moving entities.

    Near iff within ``space_m`` metres *and* ``time_s`` seconds — the
    temporal constraint is what lets the streaming variant clean up
    entities that are out of temporal scope.
    """
    if abs(a.t - b.t) > time_s:
        return False, float("inf")
    d = a.distance_to(b)
    return d <= space_m, d
