"""Spatio-temporal link discovery (S7): blocking, cell masks, refinement."""

from .blocking import BlockingStats, PortBlocks, RegionBlocks, default_grid
from .discoverer import DiscoveryResult, PortLinkDiscoverer, RegionLinkDiscoverer
from .masks import CellMasks, MaskStats
from .relations import (
    Link,
    NEAR_TO,
    WITHIN,
    point_near_port,
    point_near_region,
    point_within_region,
    points_near,
)
from .streaming import MovingProximityDiscoverer, StreamingStats

__all__ = [
    "BlockingStats",
    "CellMasks",
    "DiscoveryResult",
    "Link",
    "MaskStats",
    "MovingProximityDiscoverer",
    "NEAR_TO",
    "PortBlocks",
    "PortLinkDiscoverer",
    "RegionBlocks",
    "RegionLinkDiscoverer",
    "StreamingStats",
    "WITHIN",
    "default_grid",
    "point_near_port",
    "point_near_region",
    "point_within_region",
    "points_near",
]
