"""Cell masks: the paper's key link-discovery optimization (Section 4.2.4).

For each grid cell, the *mask* is the complement — within the cell — of
the union of the spatial areas of the stationary entities blocked with
that cell (the green area of the paper's Figure 4). A new moving entity
is first tested against the mask of its enclosing cell: if it falls in
the mask, **no candidate pair in that cell can match**, and all
refinement comparisons are skipped. The paper reports this raising
throughput from 23.09 to 123.51 entities/s.

The mask is realized as a per-cell bitmap over an ``n x n`` sub-grid: a
sub-cell is *free* (in the mask) iff no candidate geometry overlaps it.
Coverage is computed by scanline polygon rasterization — a supercover of
every boundary edge plus an even-odd interior fill — which marks exactly
the sub-cells the polygon intersects (boundary sub-cells come from the
edge traversal, fully-interior sub-cells from the fill), in
O(vertices + covered sub-cells) per region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .blocking import RegionBlocks


@dataclass
class MaskStats:
    """How often the mask pruned all refinement work."""

    tested: int = 0
    pruned: int = 0

    def prune_rate(self) -> float:
        return self.pruned / self.tested if self.tested else 0.0


class CellMasks:
    """Per-cell coverage bitmaps over the blocked region set."""

    def __init__(
        self,
        blocks: RegionBlocks,
        resolution: int = 16,
        near_margin_m: float = 0.0,
        vectorized: bool = True,
    ):
        if resolution < 1:
            raise ValueError("mask resolution must be >= 1")
        self.blocks = blocks
        self.grid = blocks.grid
        self.resolution = resolution
        self.near_margin_m = near_margin_m
        # cell_id -> bitmask of covered sub-cells (bit set = covered, NOT mask).
        self._coverage: dict[int, int] = {}
        if vectorized:
            self._build_batch()
        else:
            self._build()
        # Cells that have blocked candidates but no materialized coverage
        # (possible when a region's *expanded* blocking overshoots its
        # geometry) must still have an all-free bitmap entry: "no entry"
        # means "no candidates" to the fast path below.
        for cell_id in self.blocks._cell_to_regions:
            self._coverage.setdefault(cell_id, 0)
        # cell_id -> (bits, min_lon, min_lat, inv_dx, inv_dy): precomputed so
        # the hot in_mask lookup allocates nothing.
        self._lookup: dict[int, tuple[int, float, float, float, float]] = {}
        for cell_id, bits in self._coverage.items():
            box = self.grid.cell_of_id(cell_id).box
            self._lookup[cell_id] = (
                bits,
                box.min_lon,
                box.min_lat,
                self.resolution / box.width,
                self.resolution / box.height,
            )
        self.stats = MaskStats()
        # Aligned arrays for in_mask_batch, built lazily on first use.
        self._tables: tuple[np.ndarray, ...] | None = None

    # -- construction -------------------------------------------------------------

    def _build(self) -> None:
        res = self.resolution
        grid = self.grid
        sub_cols = grid.cols * res
        sub_rows = grid.rows * res
        inv_dx = sub_cols / grid.bbox.width
        inv_dy = sub_rows / grid.bbox.height
        min_lon, min_lat = grid.bbox.min_lon, grid.bbox.min_lat

        def mark(sc: int, sr: int) -> None:
            if not (0 <= sc < sub_cols and 0 <= sr < sub_rows):
                return
            cell_id = (sr // res) * grid.cols + (sc // res)
            bit = 1 << ((sr % res) * res + (sc % res))
            self._coverage[cell_id] = self._coverage.get(cell_id, 0) | bit

        for region in self.blocks.regions:
            if self.near_margin_m > 0.0:
                # nearTo coverage: the expanded bounding rectangle.
                box = region.polygon.bbox.expanded_by_metres(self.near_margin_m)
                c0 = max(0, int((box.min_lon - min_lon) * inv_dx))
                c1 = min(sub_cols - 1, int((box.max_lon - min_lon) * inv_dx))
                r0 = max(0, int((box.min_lat - min_lat) * inv_dy))
                r1 = min(sub_rows - 1, int((box.max_lat - min_lat) * inv_dy))
                for sr in range(r0, r1 + 1):
                    for sc in range(c0, c1 + 1):
                        mark(sc, sr)
                continue
            rings = [region.polygon.vertices] + region.polygon.holes
            # 1) Supercover of every boundary edge.
            for ring in rings:
                n = len(ring)
                for i in range(n):
                    ax, ay = ring[i]
                    bx, by = ring[(i + 1) % n]
                    _supercover(
                        (ax - min_lon) * inv_dx,
                        (ay - min_lat) * inv_dy,
                        (bx - min_lon) * inv_dx,
                        (by - min_lat) * inv_dy,
                        mark,
                    )
            # 2) Even-odd interior fill along sub-row centre scanlines.
            box = region.polygon.bbox
            r0 = max(0, int((box.min_lat - min_lat) * inv_dy))
            r1 = min(sub_rows - 1, int((box.max_lat - min_lat) * inv_dy))
            for sr in range(r0, r1 + 1):
                y = min_lat + (sr + 0.5) / inv_dy
                crossings: list[float] = []
                for ring in rings:
                    n = len(ring)
                    for i in range(n):
                        x1, y1 = ring[i]
                        x2, y2 = ring[(i + 1) % n]
                        if (y1 > y) != (y2 > y):
                            crossings.append(x1 + (y - y1) * (x2 - x1) / (y2 - y1))
                crossings.sort()
                for j in range(0, len(crossings) - 1, 2):
                    c_start = int((crossings[j] - min_lon) * inv_dx)
                    c_end = int((crossings[j + 1] - min_lon) * inv_dx)
                    for sc in range(max(0, c_start), min(sub_cols - 1, c_end) + 1):
                        mark(sc, sr)

    def _build_batch(self) -> None:
        """Canvas-based coverage build: row-run numpy fills, identical bitmaps.

        Marks all regions into one boolean sub-grid canvas — the boundary
        supercover stays per-edge (it is O(vertices)), but the interior
        scanline spans and nearTo rectangles become whole-row slice
        assignments — then packs each grid cell's ``res x res`` block into
        the same little-endian bit layout the scalar ``mark`` produces
        (bit index ``(sr % res) * res + (sc % res)``). The scalar
        ``_build`` (``vectorized=False``) is the equivalence oracle: both
        paths yield byte-identical ``_coverage`` dictionaries.
        """
        res = self.resolution
        grid = self.grid
        sub_cols = grid.cols * res
        sub_rows = grid.rows * res
        inv_dx = sub_cols / grid.bbox.width
        inv_dy = sub_rows / grid.bbox.height
        min_lon, min_lat = grid.bbox.min_lon, grid.bbox.min_lat
        canvas = np.zeros((sub_rows, sub_cols), dtype=bool)

        def mark(sc: int, sr: int) -> None:
            if 0 <= sc < sub_cols and 0 <= sr < sub_rows:
                canvas[sr, sc] = True

        for region in self.blocks.regions:
            if self.near_margin_m > 0.0:
                box = region.polygon.bbox.expanded_by_metres(self.near_margin_m)
                c0 = max(0, int((box.min_lon - min_lon) * inv_dx))
                c1 = min(sub_cols - 1, int((box.max_lon - min_lon) * inv_dx))
                r0 = max(0, int((box.min_lat - min_lat) * inv_dy))
                r1 = min(sub_rows - 1, int((box.max_lat - min_lat) * inv_dy))
                if c1 >= c0 and r1 >= r0:
                    canvas[r0 : r1 + 1, c0 : c1 + 1] = True
                continue
            rings = [region.polygon.vertices] + region.polygon.holes
            for ring in rings:
                n = len(ring)
                for i in range(n):
                    ax, ay = ring[i]
                    bx, by = ring[(i + 1) % n]
                    _supercover(
                        (ax - min_lon) * inv_dx,
                        (ay - min_lat) * inv_dy,
                        (bx - min_lon) * inv_dx,
                        (by - min_lat) * inv_dy,
                        mark,
                    )
            box = region.polygon.bbox
            r0 = max(0, int((box.min_lat - min_lat) * inv_dy))
            r1 = min(sub_rows - 1, int((box.max_lat - min_lat) * inv_dy))
            for sr in range(r0, r1 + 1):
                y = min_lat + (sr + 0.5) / inv_dy
                crossings: list[float] = []
                for ring in rings:
                    n = len(ring)
                    for i in range(n):
                        x1, y1 = ring[i]
                        x2, y2 = ring[(i + 1) % n]
                        if (y1 > y) != (y2 > y):
                            crossings.append(x1 + (y - y1) * (x2 - x1) / (y2 - y1))
                crossings.sort()
                for j in range(0, len(crossings) - 1, 2):
                    c_start = max(0, int((crossings[j] - min_lon) * inv_dx))
                    c_end = min(sub_cols - 1, int((crossings[j + 1] - min_lon) * inv_dx))
                    if c_end >= c_start:
                        canvas[sr, c_start : c_end + 1] = True

        # Pack each grid cell's res x res block into the scalar bit layout.
        blocks4 = canvas.reshape(grid.rows, res, grid.cols, res).transpose(0, 2, 1, 3)
        covered = blocks4.any(axis=(2, 3))
        for row, col in np.argwhere(covered):
            block = np.ascontiguousarray(blocks4[row, col])
            packed = np.packbits(block.reshape(-1), bitorder="little")
            self._coverage[int(row) * grid.cols + int(col)] = int.from_bytes(packed.tobytes(), "little")

    # -- querying -----------------------------------------------------------------

    def in_mask(self, lon: float, lat: float) -> bool:
        """True iff the point lies in the *free* part of its cell.

        A True verdict guarantees no blocked geometry can match the point,
        so the caller may skip refinement entirely.
        """
        self.stats.tested += 1
        cell_id = self.grid.cell_id(lon, lat)
        entry = self._lookup.get(cell_id)
        if entry is None:
            # No candidates blocked with this cell at all: trivially in mask.
            self.stats.pruned += 1
            return True
        bits, min_lon, min_lat, inv_dx, inv_dy = entry
        res = self.resolution
        c = int((lon - min_lon) * inv_dx)
        r = int((lat - min_lat) * inv_dy)
        if c < 0:
            c = 0
        elif c >= res:
            c = res - 1
        if r < 0:
            r = 0
        elif r >= res:
            r = res - 1
        free = not (bits & (1 << (r * res + c)))
        if free:
            self.stats.pruned += 1
        return free

    def _ensure_tables(self) -> tuple[np.ndarray, ...]:
        """Aligned per-entry arrays over ``_lookup`` for the batch fast path.

        ``_lookup`` is immutable after construction, so this is built
        once: a sorted cell-id array for ``searchsorted`` resolution, the
        per-entry sub-grid transforms, and the coverage bits unpacked to
        a ``(entries, res, res)`` boolean cube (bit ``r*res + c`` of the
        scalar int maps to ``cov[e, r, c]``).
        """
        if self._tables is not None:
            return self._tables
        res = self.resolution
        ids = np.sort(np.fromiter(self._lookup.keys(), dtype=np.int64, count=len(self._lookup)))
        n = ids.size
        min_lon = np.empty(n, dtype=np.float64)
        min_lat = np.empty(n, dtype=np.float64)
        inv_dx = np.empty(n, dtype=np.float64)
        inv_dy = np.empty(n, dtype=np.float64)
        nbytes = (res * res + 7) // 8
        cov = np.zeros((n, res, res), dtype=bool)
        for e, cell_id in enumerate(ids.tolist()):
            bits, lo, la, ix, iy = self._lookup[cell_id]
            min_lon[e], min_lat[e], inv_dx[e], inv_dy[e] = lo, la, ix, iy
            if bits:
                raw = np.frombuffer(bits.to_bytes(nbytes, "little"), dtype=np.uint8)
                cov[e] = np.unpackbits(raw, bitorder="little")[: res * res].reshape(res, res)
        self._tables = (ids, min_lon, min_lat, inv_dx, inv_dy, cov)
        return self._tables

    def in_mask_batch(self, lons, lats) -> np.ndarray:
        """Vectorized :meth:`in_mask`: per-point free/covered verdicts.

        Resolves every point's cell id, sub-cell and coverage bit in one
        numpy pass — bit-for-bit identical verdicts to the scalar twin
        (pure truncation arithmetic and bit tests), and the same
        ``stats`` deltas: ``tested`` grows by the batch size, ``pruned``
        by the number of True verdicts.
        """
        lon = np.ascontiguousarray(lons, dtype=np.float64)
        lat = np.ascontiguousarray(lats, dtype=np.float64)
        n = lon.size
        self.stats.tested += n
        ids, e_min_lon, e_min_lat, e_inv_dx, e_inv_dy, cov = self._ensure_tables()
        verdict = np.ones(n, dtype=bool)
        if ids.size:
            cell_ids = self.grid.cell_ids_batch(lon, lat)
            pos = np.minimum(np.searchsorted(ids, cell_ids), ids.size - 1)
            found = ids[pos] == cell_ids
            if found.any():
                e = pos[found]
                res = self.resolution
                c = ((lon[found] - e_min_lon[e]) * e_inv_dx[e]).astype(np.int64)
                r = ((lat[found] - e_min_lat[e]) * e_inv_dy[e]).astype(np.int64)
                np.clip(c, 0, res - 1, out=c)
                np.clip(r, 0, res - 1, out=r)
                verdict[found] = ~cov[e, r, c]
        self.stats.pruned += int(verdict.sum())
        return verdict

    def coverage_fraction(self, cell_id: int) -> float:
        """Fraction of a cell's sub-cells covered by candidate geometry."""
        bits = self._coverage.get(cell_id, 0)
        return bin(bits).count("1") / (self.resolution * self.resolution)

    def masked_cells(self) -> int:
        """Number of cells with a materialized coverage bitmap."""
        return len(self._coverage)


def _supercover(x0: float, y0: float, x1: float, y1: float, mark) -> None:
    """Mark every sub-cell a segment passes through (Amanatides-Woo traversal)."""
    cx, cy = int(math.floor(x0)), int(math.floor(y0))
    ex, ey = int(math.floor(x1)), int(math.floor(y1))
    mark(cx, cy)
    dx, dy = x1 - x0, y1 - y0
    step_x = 1 if dx > 0 else -1
    step_y = 1 if dy > 0 else -1
    # Parametric distance to the next vertical/horizontal sub-cell boundary.
    t_max_x = math.inf if dx == 0 else ((cx + (step_x > 0)) - x0) / dx
    t_max_y = math.inf if dy == 0 else ((cy + (step_y > 0)) - y0) / dy
    t_delta_x = math.inf if dx == 0 else abs(1.0 / dx)
    t_delta_y = math.inf if dy == 0 else abs(1.0 / dy)
    # Bounded loop: a segment crosses at most |ex-cx| + |ey-cy| boundaries.
    for _ in range(abs(ex - cx) + abs(ey - cy) + 2):
        if cx == ex and cy == ey:
            break
        if t_max_x < t_max_y:
            t_max_x += t_delta_x
            cx += step_x
        elif t_max_y < t_max_x:
            t_max_y += t_delta_y
            cy += step_y
        else:
            # Exact corner crossing: mark both adjacent cells (conservative).
            mark(cx + step_x, cy)
            mark(cx, cy + step_y)
            t_max_x += t_delta_x
            t_max_y += t_delta_y
            cx += step_x
            cy += step_y
        mark(cx, cy)
