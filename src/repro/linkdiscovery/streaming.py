"""Streaming proximity discovery among moving entities (Section 4.2.4).

The paper's component identifies proximity relations *among* critical
points when dealing with streamed data, using a book-keeping process
that cleans the grid: given a temporal distance threshold, entities that
fall out of temporal scope can never satisfy the relation again and are
evicted. This module implements that: a grid of recent points with
lazy eviction, producing ``geosparql:nearTo`` links between moving
entities (e.g. two vessels within 5 km and 5 minutes — the collision
precursor of the maritime scenario).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from ..geo import BBox, EquiGrid, PositionFix

from .blocking import default_grid
from .discoverer import DiscoveryResult
from .relations import Link, NEAR_TO, points_near


@dataclass
class StreamingStats:
    """Book-keeping accounting."""

    inserted: int = 0
    evicted: int = 0
    comparisons: int = 0


class MovingProximityDiscoverer:
    """Online nearTo discovery between moving entities in one pass."""

    def __init__(
        self,
        bbox: BBox,
        space_threshold_m: float,
        time_threshold_s: float,
        cell_deg: float = 0.25,
        self_links: bool = False,
        registry=None,
    ):
        if space_threshold_m <= 0 or time_threshold_s <= 0:
            raise ValueError("thresholds must be positive")
        self.space_threshold_m = space_threshold_m
        self.time_threshold_s = time_threshold_s
        self.self_links = self_links
        self.grid: EquiGrid = default_grid(bbox, cell_deg)
        self._radius = self.grid.radius_to_cells(space_threshold_m)
        # cell_id -> deque of recent fixes (append order = time order).
        self._cells: dict[int, deque[PositionFix]] = {}
        self.stats = StreamingStats()
        if registry is not None:
            # Candidate-pair/book-keeping accounting as live gauges over the
            # stats the discoverer already keeps, plus the grid's footprint.
            registry.gauge("linkdiscovery.proximity.candidate_pairs", fn=lambda: self.stats.comparisons)
            registry.gauge("linkdiscovery.proximity.inserted", fn=lambda: self.stats.inserted)
            registry.gauge("linkdiscovery.proximity.evicted", fn=lambda: self.stats.evicted)
            registry.gauge("linkdiscovery.proximity.live_entries", fn=self.live_entries)

    def _evict(self, cell_id: int, now: float) -> None:
        """Drop entries out of temporal scope from one cell (book-keeping)."""
        bucket = self._cells.get(cell_id)
        if not bucket:
            return
        horizon = now - self.time_threshold_s
        while bucket and bucket[0].t < horizon:
            bucket.popleft()
            self.stats.evicted += 1
        if not bucket:
            del self._cells[cell_id]

    def process(self, fix: PositionFix) -> list[Link]:
        """Insert one fix; returns nearTo links against recent neighbours."""
        center = self.grid.cell_id(fix.lon, fix.lat)
        links: list[Link] = []
        for cell_id in self.grid.neighbour_ids(center, radius=self._radius):
            self._evict(cell_id, fix.t)
            for other in self._cells.get(cell_id, ()):
                if not self.self_links and other.entity_id == fix.entity_id:
                    continue
                self.stats.comparisons += 1
                near, d = points_near(fix, other, self.space_threshold_m, self.time_threshold_s)
                if near:
                    links.append(Link(fix.entity_id, other.entity_id, NEAR_TO, fix.t, d))
        self._cells.setdefault(center, deque()).append(fix)
        self.stats.inserted += 1
        return links

    def discover(self, fixes: Iterable[PositionFix]) -> DiscoveryResult:
        """Run over a time-ordered bounded stream, measuring throughput."""
        links: list[Link] = []
        n = 0
        start = time.perf_counter()
        for fix in fixes:
            links.extend(self.process(fix))
            n += 1
        elapsed = time.perf_counter() - start
        return DiscoveryResult(links, n, elapsed, refinements=self.stats.comparisons)

    def live_entries(self) -> int:
        """How many fixes are currently retained in the grid."""
        return sum(len(bucket) for bucket in self._cells.values())
