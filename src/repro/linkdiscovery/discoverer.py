"""The link-discovery engine: blocking + optional masks + refinement.

Reproduces the E4 experiment (Section 4.2.4): discovering
``dul:within`` and ``geosparql:nearTo`` relations between a stream of
critical points and a static set of regions/ports, with and without
cell masks, measuring throughput in entities (points) per second.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datasources.ports import Port
from ..datasources.regions import Region
from ..geo import BBox, EquiGrid, PositionFix

from .blocking import PortBlocks, RegionBlocks, default_grid
from .masks import CellMasks
from .relations import Link, NEAR_TO, WITHIN, point_near_port, point_near_region, point_within_region


@dataclass
class DiscoveryResult:
    """Links found plus the performance counters the paper reports."""

    links: list[Link]
    entities_processed: int
    wall_seconds: float
    refinements: int
    mask_pruned: int = 0

    @property
    def throughput_entities_s(self) -> float:
        return self.entities_processed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def count(self, relation: str) -> int:
        return sum(1 for link in self.links if link.relation == relation)


class _DiscoveryCounters:
    """The ``linkdiscovery.<name>.*`` counter bundle (candidate/pruned pairs).

    One per discoverer when a ``repro.obs.MetricsRegistry`` is attached;
    ``None`` otherwise so the hot path stays branch-cheap.
    """

    __slots__ = ("entities", "candidates", "links", "mask_pruned")

    def __init__(self, registry, name: str):
        self.entities = registry.counter(f"linkdiscovery.{name}.entities")
        self.candidates = registry.counter(f"linkdiscovery.{name}.candidate_pairs")
        self.links = registry.counter(f"linkdiscovery.{name}.links")
        self.mask_pruned = registry.counter(f"linkdiscovery.{name}.mask_pruned")


class RegionLinkDiscoverer:
    """within/nearTo discovery between moving points and stationary regions."""

    def __init__(
        self,
        regions: Sequence[Region],
        bbox: BBox,
        cell_deg: float = 0.25,
        near_threshold_m: float = 0.0,
        use_masks: bool = True,
        mask_resolution: int = 8,
        registry=None,
        metrics_name: str = "region",
    ):
        if not regions:
            raise ValueError("no regions to link against")
        self.near_threshold_m = near_threshold_m
        self.grid: EquiGrid = default_grid(bbox, cell_deg)
        self.blocks = RegionBlocks(list(regions), self.grid, near_margin_m=near_threshold_m)
        self.masks = (
            CellMasks(self.blocks, resolution=mask_resolution, near_margin_m=near_threshold_m)
            if use_masks
            else None
        )
        self._counters = _DiscoveryCounters(registry, metrics_name) if registry is not None else None

    def links_for(self, fix: PositionFix) -> tuple[list[Link], int]:
        """Links of one point; returns (links, refinement_count)."""
        counters = self._counters
        if counters is not None:
            counters.entities.inc()
        if self.masks is not None and self.masks.in_mask(fix.lon, fix.lat):
            if counters is not None:
                counters.mask_pruned.inc()
            return [], 0
        links: list[Link] = []
        refinements = 0
        for region in self.blocks.candidates(fix.lon, fix.lat):
            refinements += 1
            if point_within_region(fix, region):
                links.append(Link(fix.entity_id, region.region_id, WITHIN, fix.t, 0.0))
            elif self.near_threshold_m > 0.0:
                near, d = point_near_region(fix, region, self.near_threshold_m)
                if near:
                    links.append(Link(fix.entity_id, region.region_id, NEAR_TO, fix.t, d))
        if counters is not None:
            counters.candidates.inc(refinements)
            if links:
                counters.links.inc(len(links))
        return links, refinements

    def discover(self, fixes: Iterable[PositionFix]) -> DiscoveryResult:
        """Run over a bounded point stream, measuring throughput."""
        links: list[Link] = []
        n = 0
        refinements = 0
        start = time.perf_counter()
        for fix in fixes:
            found, r = self.links_for(fix)
            links.extend(found)
            refinements += r
            n += 1
        elapsed = time.perf_counter() - start
        pruned = self.masks.stats.pruned if self.masks is not None else 0
        return DiscoveryResult(links, n, elapsed, refinements, mask_pruned=pruned)


class PortLinkDiscoverer:
    """nearTo discovery between moving points and ports."""

    def __init__(
        self,
        ports: Sequence[Port],
        bbox: BBox,
        threshold_m: float,
        cell_deg: float = 0.25,
        registry=None,
        metrics_name: str = "port",
    ):
        if not ports:
            raise ValueError("no ports to link against")
        if threshold_m <= 0:
            raise ValueError("nearTo needs a positive threshold")
        self.threshold_m = threshold_m
        self.grid = default_grid(bbox, cell_deg)
        self.blocks = PortBlocks(list(ports), self.grid, threshold_m)
        self._counters = _DiscoveryCounters(registry, metrics_name) if registry is not None else None

    def links_for(self, fix: PositionFix) -> tuple[list[Link], int]:
        links: list[Link] = []
        refinements = 0
        for port in self.blocks.candidates(fix.lon, fix.lat):
            refinements += 1
            near, d = point_near_port(fix, port, self.threshold_m)
            if near:
                links.append(Link(fix.entity_id, port.port_id, NEAR_TO, fix.t, d))
        counters = self._counters
        if counters is not None:
            counters.entities.inc()
            counters.candidates.inc(refinements)
            if links:
                counters.links.inc(len(links))
        return links, refinements

    def discover(self, fixes: Iterable[PositionFix]) -> DiscoveryResult:
        links: list[Link] = []
        n = 0
        refinements = 0
        start = time.perf_counter()
        for fix in fixes:
            found, r = self.links_for(fix)
            links.extend(found)
            refinements += r
            n += 1
        elapsed = time.perf_counter() - start
        return DiscoveryResult(links, n, elapsed, refinements)
