"""The link-discovery engine: blocking + optional masks + refinement.

Reproduces the E4 experiment (Section 4.2.4): discovering
``dul:within`` and ``geosparql:nearTo`` relations between a stream of
critical points and a static set of regions/ports, with and without
cell masks, measuring throughput in entities (points) per second.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..datasources.ports import Port
from ..datasources.regions import Region
from ..geo import BBox, EquiGrid, PositionFix, kernels

from .blocking import PortBlocks, RegionBlocks, default_grid
from .masks import CellMasks
from .relations import Link, NEAR_TO, WITHIN, point_near_port, point_near_region, point_within_region


@dataclass
class DiscoveryResult:
    """Links found plus the performance counters the paper reports."""

    links: list[Link]
    entities_processed: int
    wall_seconds: float
    refinements: int
    mask_pruned: int = 0

    @property
    def throughput_entities_s(self) -> float:
        return self.entities_processed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def count(self, relation: str) -> int:
        return sum(1 for link in self.links if link.relation == relation)


class _DiscoveryCounters:
    """The ``linkdiscovery.<name>.*`` counter bundle (candidate/pruned pairs).

    One per discoverer when a ``repro.obs.MetricsRegistry`` is attached;
    ``None`` otherwise so the hot path stays branch-cheap.
    """

    __slots__ = ("entities", "candidates", "links", "mask_pruned")

    def __init__(self, registry, name: str):
        self.entities = registry.counter(f"linkdiscovery.{name}.entities")
        self.candidates = registry.counter(f"linkdiscovery.{name}.candidate_pairs")
        self.links = registry.counter(f"linkdiscovery.{name}.links")
        self.mask_pruned = registry.counter(f"linkdiscovery.{name}.mask_pruned")


class RegionLinkDiscoverer:
    """within/nearTo discovery between moving points and stationary regions."""

    def __init__(
        self,
        regions: Sequence[Region],
        bbox: BBox,
        cell_deg: float = 0.25,
        near_threshold_m: float = 0.0,
        use_masks: bool = True,
        mask_resolution: int = 8,
        registry=None,
        metrics_name: str = "region",
    ):
        if not regions:
            raise ValueError("no regions to link against")
        self.near_threshold_m = near_threshold_m
        self.grid: EquiGrid = default_grid(bbox, cell_deg)
        self.blocks = RegionBlocks(list(regions), self.grid, near_margin_m=near_threshold_m)
        self.masks = (
            CellMasks(self.blocks, resolution=mask_resolution, near_margin_m=near_threshold_m)
            if use_masks
            else None
        )
        self._counters = _DiscoveryCounters(registry, metrics_name) if registry is not None else None

    def links_for(self, fix: PositionFix) -> tuple[list[Link], int]:
        """Links of one point; returns (links, refinement_count)."""
        counters = self._counters
        if counters is not None:
            counters.entities.inc()
        if self.masks is not None and self.masks.in_mask(fix.lon, fix.lat):
            if counters is not None:
                counters.mask_pruned.inc()
            return [], 0
        links: list[Link] = []
        refinements = 0
        for region in self.blocks.candidates(fix.lon, fix.lat):
            refinements += 1
            if point_within_region(fix, region):
                links.append(Link(fix.entity_id, region.region_id, WITHIN, fix.t, 0.0))
            elif self.near_threshold_m > 0.0:
                near, d = point_near_region(fix, region, self.near_threshold_m)
                if near:
                    links.append(Link(fix.entity_id, region.region_id, NEAR_TO, fix.t, d))
        if counters is not None:
            counters.candidates.inc(refinements)
            if links:
                counters.links.inc(len(links))
        return links, refinements

    def discover(self, fixes: Iterable[PositionFix], vectorized: bool = True) -> DiscoveryResult:
        """Run over a bounded point stream, measuring throughput.

        The vectorized path mask-prunes the whole batch in one shot, then
        groups survivors by cell and refines each candidate region with
        the batched point-in-polygon / boundary-distance kernels. The
        per-point path (``vectorized=False``) is the equivalence oracle:
        both produce the same link set, prune verdicts and counter
        deltas (the batch path's link ordering groups by cell).

        ``mask_pruned`` reports this run's prunes only: the mask stats
        are snapshotted at entry, so consecutive ``discover()`` calls on
        one discoverer no longer inflate each other's counts.
        """
        pruned_before = self.masks.stats.pruned if self.masks is not None else 0
        links: list[Link] = []
        n = 0
        refinements = 0
        start = time.perf_counter()
        if vectorized:
            links, n, refinements = self._discover_batch(list(fixes))
        else:
            for fix in fixes:
                found, r = self.links_for(fix)
                links.extend(found)
                refinements += r
                n += 1
        elapsed = time.perf_counter() - start
        pruned = self.masks.stats.pruned - pruned_before if self.masks is not None else 0
        return DiscoveryResult(links, n, elapsed, refinements, mask_pruned=pruned)

    def _discover_batch(self, fixes: list[PositionFix]) -> tuple[list[Link], int, int]:
        """One-shot mask pruning + per-cell grouped refinement over a fix batch."""
        n = len(fixes)
        counters = self._counters
        if counters is not None:
            counters.entities.inc(n)
        if n == 0:
            return [], 0, 0
        lons = np.fromiter((f.lon for f in fixes), dtype=np.float64, count=n)
        lats = np.fromiter((f.lat for f in fixes), dtype=np.float64, count=n)
        if self.masks is not None:
            free = self.masks.in_mask_batch(lons, lats)
            if counters is not None:
                counters.mask_pruned.inc(int(free.sum()))
            survivors = np.flatnonzero(~free)
        else:
            survivors = np.arange(n)
        links: list[Link] = []
        refinements = 0
        if survivors.size == 0:
            return links, n, 0
        cell_ids = self.grid.cell_ids_batch(lons[survivors], lats[survivors])
        # Group survivors into per-cell runs via a stable sort on cell id.
        order = np.argsort(cell_ids, kind="stable")
        sorted_cells = cell_ids[order]
        run_starts = np.flatnonzero(np.r_[True, sorted_cells[1:] != sorted_cells[:-1]])
        run_ends = np.r_[run_starts[1:], sorted_cells.size]
        # Scalar semantics: one candidates() lookup per surviving fix.
        self.blocks.stats.lookups += int(survivors.size)
        cell_map = self.blocks._cell_to_regions
        near = self.near_threshold_m
        # Regroup the (cell, region) candidate pairs by region so each
        # polygon refines all its candidates in ONE kernel call — the
        # per-cell member runs are tiny, the per-region unions are not.
        region_members: dict[int, list[np.ndarray]] = {}
        for a, b in zip(run_starts.tolist(), run_ends.tolist()):
            region_idxs = cell_map.get(int(sorted_cells[a]), [])
            count = b - a
            self.blocks.stats.candidates += len(region_idxs) * count
            if not region_idxs:
                continue
            pairs = len(region_idxs) * count
            refinements += pairs
            if counters is not None:
                counters.candidates.inc(pairs)
            members = survivors[order[a:b]]
            for ridx in region_idxs:
                region_members.setdefault(ridx, []).append(members)
        for ridx, chunks in region_members.items():
            members = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            g_lons = lons[members]
            g_lats = lats[members]
            region = self.blocks.regions[ridx]
            within = region.polygon.contains_exact_batch(g_lons, g_lats)
            for i in np.flatnonzero(within).tolist():
                f = fixes[int(members[i])]
                links.append(Link(f.entity_id, region.region_id, WITHIN, f.t, 0.0))
            if near > 0.0:
                outside = np.flatnonzero(~within)
                if outside.size:
                    d = region.polygon.distance_to_point_m_batch(g_lons[outside], g_lats[outside])
                    for i in np.flatnonzero(d <= near).tolist():
                        f = fixes[int(members[int(outside[i])])]
                        links.append(Link(f.entity_id, region.region_id, NEAR_TO, f.t, float(d[i])))
        if counters is not None and links:
            counters.links.inc(len(links))
        return links, n, refinements


class PortLinkDiscoverer:
    """nearTo discovery between moving points and ports."""

    def __init__(
        self,
        ports: Sequence[Port],
        bbox: BBox,
        threshold_m: float,
        cell_deg: float = 0.25,
        registry=None,
        metrics_name: str = "port",
    ):
        if not ports:
            raise ValueError("no ports to link against")
        if threshold_m <= 0:
            raise ValueError("nearTo needs a positive threshold")
        self.threshold_m = threshold_m
        self.grid = default_grid(bbox, cell_deg)
        self.blocks = PortBlocks(list(ports), self.grid, threshold_m)
        self._counters = _DiscoveryCounters(registry, metrics_name) if registry is not None else None
        self._port_lons = np.fromiter((p.location.lon for p in self.blocks.ports), dtype=np.float64)
        self._port_lats = np.fromiter((p.location.lat for p in self.blocks.ports), dtype=np.float64)

    def links_for(self, fix: PositionFix) -> tuple[list[Link], int]:
        counters = self._counters
        # Entities are counted on entry (before pruning/refinement), the
        # same contract as RegionLinkDiscoverer, so the two discoverers'
        # `entities` counters are comparable.
        if counters is not None:
            counters.entities.inc()
        links: list[Link] = []
        refinements = 0
        for port in self.blocks.candidates(fix.lon, fix.lat):
            refinements += 1
            near, d = point_near_port(fix, port, self.threshold_m)
            if near:
                links.append(Link(fix.entity_id, port.port_id, NEAR_TO, fix.t, d))
        if counters is not None:
            counters.candidates.inc(refinements)
            if links:
                counters.links.inc(len(links))
        return links, refinements

    def discover(self, fixes: Iterable[PositionFix], vectorized: bool = True) -> DiscoveryResult:
        """Run over a bounded point stream, measuring throughput.

        The vectorized path groups the batch by cell and evaluates each
        cell's point x candidate-port distances as one broadcast
        haversine kernel; the per-point loop (``vectorized=False``) is
        the equivalence oracle (haversine agrees to the last ulp of
        ``asin``, so threshold verdicts match on any workload whose
        distances are not within one ulp of the threshold).
        """
        links: list[Link] = []
        n = 0
        refinements = 0
        start = time.perf_counter()
        if vectorized:
            links, n, refinements = self._discover_batch(list(fixes))
        else:
            for fix in fixes:
                found, r = self.links_for(fix)
                links.extend(found)
                refinements += r
                n += 1
        elapsed = time.perf_counter() - start
        return DiscoveryResult(links, n, elapsed, refinements)

    def _discover_batch(self, fixes: list[PositionFix]) -> tuple[list[Link], int, int]:
        """Per-cell grouped point x port broadcast refinement over a fix batch."""
        n = len(fixes)
        counters = self._counters
        if counters is not None:
            counters.entities.inc(n)
        if n == 0:
            return [], 0, 0
        lons = np.fromiter((f.lon for f in fixes), dtype=np.float64, count=n)
        lats = np.fromiter((f.lat for f in fixes), dtype=np.float64, count=n)
        cell_ids = self.grid.cell_ids_batch(lons, lats)
        order = np.argsort(cell_ids, kind="stable")
        sorted_cells = cell_ids[order]
        run_starts = np.flatnonzero(np.r_[True, sorted_cells[1:] != sorted_cells[:-1]])
        run_ends = np.r_[run_starts[1:], sorted_cells.size]
        self.blocks.stats.lookups += n
        cell_map = self.blocks._cell_to_ports
        links: list[Link] = []
        refinements = 0
        for a, b in zip(run_starts.tolist(), run_ends.tolist()):
            port_idxs = cell_map.get(int(sorted_cells[a]), [])
            count = b - a
            self.blocks.stats.candidates += len(port_idxs) * count
            if not port_idxs:
                continue
            pairs = len(port_idxs) * count
            refinements += pairs
            if counters is not None:
                counters.candidates.inc(pairs)
            members = order[a:b]
            idx = np.asarray(port_idxs, dtype=np.int64)
            d = kernels.haversine_m_batch(
                lons[members][:, None],
                lats[members][:, None],
                self._port_lons[idx][None, :],
                self._port_lats[idx][None, :],
            )
            for i, j in zip(*np.nonzero(d <= self.threshold_m)):
                f = fixes[int(members[int(i)])]
                port = self.blocks.ports[int(idx[int(j)])]
                links.append(Link(f.entity_id, port.port_id, NEAR_TO, f.t, float(d[i, j])))
        if counters is not None and links:
            counters.links.inc(len(links))
        return links, n, refinements
