"""Equi-grid blocking of stationary entities (Section 4.2.4).

Link discovery organizes entities with a space-partitioning equi-grid:
every stationary entity (region, port) is assigned to the cells its
geometry overlaps; a moving entity's fix is assigned to exactly one
cell, and only the stationary entities registered in that cell (or,
for distance relations, the cells within the distance radius) are
candidate pairs. The temporal dimension is deliberately *not*
partitioned — temporal scoping is handled by the streaming
book-keeping instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasources.ports import Port
from ..datasources.regions import Region
from ..geo import BBox, EquiGrid


@dataclass
class BlockingStats:
    """Candidate-generation accounting (to quantify pruning)."""

    lookups: int = 0
    candidates: int = 0

    def mean_candidates(self) -> float:
        return self.candidates / self.lookups if self.lookups else 0.0


class RegionBlocks:
    """Grid assignment of regions to cells."""

    def __init__(self, regions: list[Region], grid: EquiGrid, near_margin_m: float = 0.0):
        self.grid = grid
        self.regions = list(regions)
        self.near_margin_m = near_margin_m
        self._cell_to_regions: dict[int, list[int]] = {}
        for idx, region in enumerate(self.regions):
            poly = region.polygon
            if near_margin_m > 0.0:
                # For nearTo, a region is a candidate for any point within the
                # margin of its boundary: rasterize the expanded bbox hull.
                box = poly.bbox.expanded_by_metres(near_margin_m)
                cells = [r * grid.cols + c for c, r in grid.cells_overlapping_bbox(box)]
            else:
                cells = grid.rasterize_polygon(poly)
            for cell_id in cells:
                self._cell_to_regions.setdefault(cell_id, []).append(idx)
        self.stats = BlockingStats()

    def candidates(self, lon: float, lat: float) -> list[Region]:
        """The regions blocked with the point's cell."""
        ids = self._cell_to_regions.get(self.grid.cell_id(lon, lat), [])
        self.stats.lookups += 1
        self.stats.candidates += len(ids)
        return [self.regions[i] for i in ids]

    def candidate_indices(self, lon: float, lat: float) -> list[int]:
        """Indices (into the region list) of the candidates for a point."""
        ids = self._cell_to_regions.get(self.grid.cell_id(lon, lat), [])
        self.stats.lookups += 1
        self.stats.candidates += len(ids)
        return ids

    def occupied_cells(self) -> int:
        return len(self._cell_to_regions)


class PortBlocks:
    """Grid assignment of port points to cells, with a distance margin."""

    def __init__(self, ports: list[Port], grid: EquiGrid, threshold_m: float):
        self.grid = grid
        self.ports = list(ports)
        self.threshold_m = threshold_m
        self._cell_to_ports: dict[int, list[int]] = {}
        radius_cells = grid.radius_to_cells(threshold_m)
        for idx, port in enumerate(self.ports):
            center = grid.cell_id(port.location.lon, port.location.lat)
            for cell_id in grid.neighbour_ids(center, radius=radius_cells):
                self._cell_to_ports.setdefault(cell_id, []).append(idx)
        self.stats = BlockingStats()

    def candidates(self, lon: float, lat: float) -> list[Port]:
        ids = self._cell_to_ports.get(self.grid.cell_id(lon, lat), [])
        self.stats.lookups += 1
        self.stats.candidates += len(ids)
        return [self.ports[i] for i in ids]


def default_grid(bbox: BBox, cell_deg: float = 0.25) -> EquiGrid:
    """The standard link-discovery grid over an area of interest."""
    return EquiGrid.with_cell_size(bbox, cell_deg)
