"""repro: a full reproduction of the datAcron time-critical mobility
forecasting stack (Vouros et al., EDBT 2018).

Subpackages mirror the paper's architecture (Figure 2):

- :mod:`repro.geo` -- geometry and spatio-temporal primitives,
- :mod:`repro.streams` -- the Flink/Kafka-surrogate dataflow engine,
- :mod:`repro.datasources` -- synthetic surrogates of the Table-1 feeds,
- :mod:`repro.insitu` -- in-situ statistics, low-level events, cleaning,
- :mod:`repro.synopses` -- the trajectory Synopses Generator,
- :mod:`repro.rdf` -- the datAcron ontology and RDF generation,
- :mod:`repro.linkdiscovery` -- spatio-temporal link discovery with cell masks,
- :mod:`repro.kgstore` -- the dictionary-encoded spatio-temporal triple store,
- :mod:`repro.prediction` -- RMF/RMF* and the hybrid clustering/HMM predictor,
- :mod:`repro.cep` -- complex event recognition & forecasting (Wayeb),
- :mod:`repro.va` -- visual-analytics computational backends,
- :mod:`repro.core` -- the integrated real-time + batch pipeline.
"""

from .core import DatacronSystem, SystemConfig

__version__ = "1.0.0"

__all__ = ["DatacronSystem", "SystemConfig", "__version__"]
