"""The query model: star basic-graph-patterns with spatio-temporal constraints.

The paper's experiment measures "star join queries with spatio-temporal
constraints" — the canonical access pattern over enriched trajectories:
*find semantic nodes (and their properties) within an area and a time
window*. A :class:`StarQuery` is a star BGP around one subject variable
plus an optional :class:`STConstraint`, e.g.::

    SELECT ?node ?speed WHERE {
        ?node rdf:type dtc:SemanticNode ;
              dtc:hasTimestamp ?t ;
              geo:asWKT ?wkt ;
              dtc:reportedSpeed ?speed .
        FILTER ( st_within(?wkt, BBOX) && ?t >= T0 && ?t <= T1 )
    }
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..geo import BBox
from ..rdf import IRI, Term, Variable


@dataclass(frozen=True, slots=True)
class STConstraint:
    """A spatio-temporal range: bbox plus a closed time interval."""

    bbox: BBox
    t_min: float
    t_max: float

    def __post_init__(self):
        if self.t_max < self.t_min:
            raise ValueError("t_max must be >= t_min")

    def contains(self, lon: float, lat: float, t: float) -> bool:
        return self.t_min <= t <= self.t_max and self.bbox.contains(lon, lat)


@dataclass(frozen=True, slots=True)
class StarQuery:
    """A star BGP: one subject variable, fixed predicates, var-or-term objects."""

    subject: Variable
    arms: tuple[tuple[IRI, Union[Term, Variable]], ...]
    st: STConstraint | None = None

    def __post_init__(self):
        if not self.arms:
            raise ValueError("a star query needs at least one arm")

    @property
    def predicates(self) -> list[IRI]:
        return [p for p, _ in self.arms]

    def projected_variables(self) -> list[str]:
        """All variables the query binds (subject first)."""
        names = [self.subject.name]
        for _, obj in self.arms:
            if isinstance(obj, Variable) and obj.name not in names:
                names.append(obj.name)
        return names


def star(subject: str, *arms: tuple[IRI, Union[Term, Variable]], st: STConstraint | None = None) -> StarQuery:
    """Convenience constructor: ``star("node", (VOC.speed, var("s")), st=...)``."""
    return StarQuery(Variable(subject), tuple(arms), st=st)
