"""A SPARQL-text front end for star queries.

The paper's RDF-generation pitch is that the whole stack "can be used by
anyone who can write simple SPARQL queries"; this parser extends that to
the query side. It accepts the star-BGP subset the store executes::

    PREFIX dtc: <http://www.datacron-project.eu/datAcron#>
    SELECT ?node ?t WHERE {
        ?node a dtc:SemanticNode ;
              dtc:hasTimestamp ?t ;
              dtc:eventType "turn" .
        FILTER st_within(-6.0, 30.0, 30.0, 46.0, 0.0, 3600.0)
    }

Grammar: optional PREFIX declarations (the datAcron namespaces are
pre-declared), a SELECT clause, one subject variable with a
semicolon-chained predicate-object list, and an optional
``st_within(minLon, minLat, maxLon, maxLat, tMin, tMax)`` filter that
becomes an :class:`~repro.kgstore.sparql.STConstraint`.
"""

from __future__ import annotations

import re

from ..geo import BBox
from ..rdf import IRI, Literal, Variable
from ..rdf.terms import XSD_DOUBLE, XSD_INTEGER
from ..rdf.vocabulary import DTC, DUL, GEO, RDF, RDFS, SF, SOSA

from .sparql import STConstraint, StarQuery

#: Prefixes available without declaration.
DEFAULT_PREFIXES = {
    "dtc": DTC.base,
    "dul": DUL.base,
    "geo": GEO.base,
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "sf": SF.base,
    "sosa": SOSA.base,
}

_RDF_TYPE = IRI(RDF.base + "type")


class SPARQLSyntaxError(ValueError):
    """Raised on query text the star subset cannot represent."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<keyword>(?i:PREFIX|SELECT|WHERE|FILTER))
  | (?P<iri><[^<>\s]*>)
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<pname>[A-Za-z_][A-Za-z0-9_-]*:[A-Za-z_][A-Za-z0-9_.-]*)
  | (?P<prefixdecl>[A-Za-z_][A-Za-z0-9_-]*:)
  | (?P<a>\ba\b)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
  | (?P<func>(?i:st_within))
  | (?P<punct>[{}();,.])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise SPARQLSyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, m.group()))
    return tokens


class _Cursor:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise SPARQLSyntaxError("unexpected end of query")
        self.pos += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> str:
        k, v = self.next()
        if k != kind or (value is not None and v.lower() != value.lower()):
            raise SPARQLSyntaxError(f"expected {value or kind}, got {v!r}")
        return v


def parse_star_query(text: str) -> StarQuery:
    """Parse SPARQL text into a :class:`StarQuery`."""
    cur = _Cursor(_tokenize(text))
    prefixes = dict(DEFAULT_PREFIXES)

    # PREFIX declarations.
    while (tok := cur.peek()) is not None and tok[0] == "keyword" and tok[1].lower() == "prefix":
        cur.next()
        k, v = cur.next()
        if k == "prefixdecl":
            name = v[:-1]
        elif k == "pname":
            raise SPARQLSyntaxError(f"malformed prefix declaration near {v!r}")
        else:
            raise SPARQLSyntaxError(f"expected prefix name, got {v!r}")
        iri = cur.expect("iri")
        prefixes[name] = iri[1:-1]

    cur.expect("keyword", "SELECT")
    selected: list[str] = []
    while (tok := cur.peek()) is not None and tok[0] == "var":
        selected.append(cur.next()[1][1:])
    cur.expect("keyword", "WHERE")
    cur.expect("punct", "{")

    subject_tok = cur.next()
    if subject_tok[0] != "var":
        raise SPARQLSyntaxError("star queries need a variable subject")
    subject = Variable(subject_tok[1][1:])

    def resolve_iri(kind: str, value: str) -> IRI:
        if kind == "iri":
            return IRI(value[1:-1])
        if kind == "pname":
            prefix, local = value.split(":", 1)
            if prefix not in prefixes:
                raise SPARQLSyntaxError(f"undeclared prefix {prefix!r}")
            return IRI(prefixes[prefix] + local)
        raise SPARQLSyntaxError(f"expected an IRI, got {value!r}")

    arms = []
    while True:
        # Predicate.
        k, v = cur.next()
        if k == "a":
            predicate = _RDF_TYPE
        else:
            predicate = resolve_iri(k, v)
        # Object.
        k, v = cur.next()
        if k == "var":
            obj: object = Variable(v[1:])
        elif k in ("iri", "pname"):
            obj = resolve_iri(k, v)
        elif k == "string":
            obj = Literal(v[1:-1].replace('\\"', '"'))
        elif k == "number":
            obj = Literal(v, XSD_INTEGER if re.fullmatch(r"[-+]?\d+", v) else XSD_DOUBLE)
        else:
            raise SPARQLSyntaxError(f"bad object {v!r}")
        arms.append((predicate, obj))
        k, v = cur.next()
        if v == ";":
            continue
        if v == ".":
            break
        raise SPARQLSyntaxError(f"expected ';' or '.', got {v!r}")

    st: STConstraint | None = None
    tok = cur.peek()
    if tok is not None and tok[0] == "keyword" and tok[1].lower() == "filter":
        cur.next()
        cur.expect("func")
        cur.expect("punct", "(")
        numbers = []
        for i in range(6):
            numbers.append(float(cur.expect("number")))
            if i < 5:
                cur.expect("punct", ",")
        cur.expect("punct", ")")
        st = STConstraint(BBox(numbers[0], numbers[1], numbers[2], numbers[3]), numbers[4], numbers[5])
    cur.expect("punct", "}")
    if cur.peek() is not None:
        raise SPARQLSyntaxError(f"trailing tokens after '}}': {cur.peek()[1]!r}")

    query = StarQuery(subject, tuple(arms), st=st)
    if selected:
        available = set(query.projected_variables())
        missing = [name for name in selected if name not in available]
        if missing:
            raise SPARQLSyntaxError(f"SELECT variables not bound by the pattern: {missing}")
    return query
