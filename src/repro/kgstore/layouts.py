"""Storage layouts and partitions (Section 4.2.5).

The paper's storage layer supports several layouts over the encoded
triples — "one-triples-table", vertical partitioning, and property
tables — stored columnar (Parquet surrogate: parallel integer arrays)
and partitioned across workers (HDFS surrogate: hash partitions by
subject). All three layouts expose the same access paths the query
engine needs: full scans, predicate-restricted scans, and
subject-grouped rows for star joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

#: An encoded triple: integer (s, p, o).
EncodedTriple = tuple[int, int, int]


@dataclass(frozen=True, slots=True)
class Partition:
    """One columnar chunk of encoded triples."""

    s: np.ndarray
    p: np.ndarray
    o: np.ndarray

    def __len__(self) -> int:
        return len(self.s)


def _to_partition(triples: list[EncodedTriple]) -> Partition:
    if triples:
        arr = np.asarray(triples, dtype=np.int64)
        return Partition(arr[:, 0].copy(), arr[:, 1].copy(), arr[:, 2].copy())
    empty = np.empty(0, dtype=np.int64)
    return Partition(empty, empty, empty)


class TriplesTable:
    """The "one-triples-table" layout: all triples in hash partitions by subject."""

    name = "triples_table"

    def __init__(self, triples: Iterable[EncodedTriple], n_partitions: int = 4):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        buckets: list[list[EncodedTriple]] = [[] for _ in range(n_partitions)]
        for s, p, o in triples:
            buckets[s % n_partitions].append((s, p, o))
        self.partitions = [_to_partition(b) for b in buckets]

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    def scan(self) -> Iterator[Partition]:
        """Full scan, one partition at a time (the parallel unit)."""
        return iter(self.partitions)

    def scan_predicate(self, p_id: int) -> Iterator[Partition]:
        """Scan restricted to a predicate (filter applied per partition)."""
        for part in self.partitions:
            mask = part.p == p_id
            if mask.any():
                yield Partition(part.s[mask], part.p[mask], part.o[mask])


class VerticalPartitioning:
    """One two-column table per predicate: the classic VP layout."""

    name = "vertical_partitioning"

    def __init__(self, triples: Iterable[EncodedTriple], n_partitions: int = 4):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        grouped: dict[int, list[EncodedTriple]] = {}
        for s, p, o in triples:
            grouped.setdefault(p, []).append((s, p, o))
        self._tables: dict[int, list[Partition]] = {}
        self._size = 0
        for p_id, rows in grouped.items():
            buckets: list[list[EncodedTriple]] = [[] for _ in range(n_partitions)]
            for s, p, o in rows:
                buckets[s % n_partitions].append((s, p, o))
            self._tables[p_id] = [_to_partition(b) for b in buckets if b]
            self._size += len(rows)

    def __len__(self) -> int:
        return self._size

    def predicates(self) -> set[int]:
        return set(self._tables)

    def scan(self) -> Iterator[Partition]:
        for parts in self._tables.values():
            yield from parts

    def scan_predicate(self, p_id: int) -> Iterator[Partition]:
        """Direct per-predicate access: VP's whole point."""
        yield from self._tables.get(p_id, [])


class PropertyTable:
    """Subject-grouped rows: one (sparse) row of properties per subject.

    The natural layout for the star-join queries of the experiment: a
    star over predicates p1..pk is a row-local operation, no join at all.
    Multi-valued properties keep their last value in the row and spill
    the rest to an overflow triples list (scanned only when the engine
    asks for exhaustive semantics).
    """

    name = "property_table"

    def __init__(self, triples: Iterable[EncodedTriple], n_partitions: int = 4):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self._rows: dict[int, dict[int, int]] = {}
        self._overflow: list[EncodedTriple] = []
        self._size = 0
        for s, p, o in triples:
            row = self._rows.setdefault(s, {})
            if p in row:
                self._overflow.append((s, p, row[p]))
            row[p] = o
            self._size += 1

    def __len__(self) -> int:
        return self._size

    def subjects(self) -> Iterator[int]:
        return iter(self._rows)

    def row(self, s_id: int) -> dict[int, int] | None:
        return self._rows.get(s_id)

    def star_scan(self, predicate_ids: list[int]) -> Iterator[tuple[int, list[int]]]:
        """All (subject, [object per predicate]) rows having every predicate."""
        for s_id, row in self._rows.items():
            objs = []
            complete = True
            for p_id in predicate_ids:
                o = row.get(p_id)
                if o is None:
                    complete = False
                    break
                objs.append(o)
            if complete:
                yield s_id, objs

    def scan(self) -> Iterator[Partition]:
        rows: list[EncodedTriple] = [(s, p, o) for s, props in self._rows.items() for p, o in props.items()]
        rows.extend(self._overflow)
        yield _to_partition(rows)

    def scan_predicate(self, p_id: int) -> Iterator[Partition]:
        rows = [(s, p_id, props[p_id]) for s, props in self._rows.items() if p_id in props]
        rows.extend(t for t in self._overflow if t[1] == p_id)
        if rows:
            yield _to_partition(rows)


#: Layout registry by name.
LAYOUTS = {
    TriplesTable.name: TriplesTable,
    VerticalPartitioning.name: VerticalPartitioning,
    PropertyTable.name: PropertyTable,
}
