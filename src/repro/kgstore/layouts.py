"""Storage layouts and partitions (Section 4.2.5).

The paper's storage layer supports several layouts over the encoded
triples — "one-triples-table", vertical partitioning, and property
tables — stored columnar (Parquet surrogate: parallel integer arrays)
and partitioned across workers (HDFS surrogate: hash partitions by
subject). All three layouts expose the same access paths the query
engine needs: full scans, predicate-restricted scans, and
subject-grouped rows for star joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

#: An encoded triple: integer (s, p, o).
EncodedTriple = tuple[int, int, int]


@dataclass(frozen=True, slots=True)
class TripleColumns:
    """Encoded triples as parallel int64 columns — the columnar exchange format.

    ``KGStore`` keeps its triples in this shape and hands it to layout
    constructors directly, so layouts can bucket/partition with numpy masks
    instead of per-triple Python loops.
    """

    s: np.ndarray
    p: np.ndarray
    o: np.ndarray

    def __len__(self) -> int:
        return len(self.s)

    @staticmethod
    def from_triples(triples: Iterable[EncodedTriple]) -> "TripleColumns":
        rows = triples if isinstance(triples, list) else list(triples)
        if rows:
            arr = np.asarray(rows, dtype=np.int64)
            return TripleColumns(arr[:, 0].copy(), arr[:, 1].copy(), arr[:, 2].copy())
        empty = np.empty(0, dtype=np.int64)
        return TripleColumns(empty, empty.copy(), empty.copy())

    @staticmethod
    def empty() -> "TripleColumns":
        e = np.empty(0, dtype=np.int64)
        return TripleColumns(e, e.copy(), e.copy())

    def concat(self, other: "TripleColumns") -> "TripleColumns":
        """A new column set with ``other`` appended (the growing-store path)."""
        return TripleColumns(
            np.concatenate([self.s, other.s]),
            np.concatenate([self.p, other.p]),
            np.concatenate([self.o, other.o]),
        )


def _as_columns(triples: "Iterable[EncodedTriple] | TripleColumns") -> TripleColumns:
    if isinstance(triples, TripleColumns):
        return triples
    return TripleColumns.from_triples(triples)


@dataclass(frozen=True, slots=True)
class Partition:
    """One columnar chunk of encoded triples."""

    s: np.ndarray
    p: np.ndarray
    o: np.ndarray

    def __len__(self) -> int:
        return len(self.s)


def _to_partition(triples: list[EncodedTriple]) -> Partition:
    if triples:
        arr = np.asarray(triples, dtype=np.int64)
        return Partition(arr[:, 0].copy(), arr[:, 1].copy(), arr[:, 2].copy())
    empty = np.empty(0, dtype=np.int64)
    return Partition(empty, empty, empty)


class TriplesTable:
    """The "one-triples-table" layout: all triples in hash partitions by subject."""

    name = "triples_table"

    def __init__(self, triples: "Iterable[EncodedTriple] | TripleColumns", n_partitions: int = 4):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        cols = _as_columns(triples)
        bucket_of = cols.s % n_partitions
        self.partitions = [
            Partition(cols.s[m], cols.p[m], cols.o[m])
            for k in range(n_partitions)
            for m in (bucket_of == k,)
        ]

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    def scan(self) -> Iterator[Partition]:
        """Full scan, one partition at a time (the parallel unit)."""
        return iter(self.partitions)

    def scan_predicate(self, p_id: int) -> Iterator[Partition]:
        """Scan restricted to a predicate (filter applied per partition)."""
        for part in self.partitions:
            mask = part.p == p_id
            if mask.any():
                yield Partition(part.s[mask], part.p[mask], part.o[mask])


class VerticalPartitioning:
    """One two-column table per predicate: the classic VP layout."""

    name = "vertical_partitioning"

    def __init__(self, triples: "Iterable[EncodedTriple] | TripleColumns", n_partitions: int = 4):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        cols = _as_columns(triples)
        self._tables: dict[int, list[Partition]] = {}
        self._size = len(cols)
        if not len(cols):
            return
        # Predicate tables keep first-occurrence order (dict-insertion parity
        # with the per-triple build), buckets keep input row order.
        uniq, first_idx = np.unique(cols.p, return_index=True)
        for p_id in uniq[np.argsort(first_idx)].tolist():
            p_mask = cols.p == p_id
            s = cols.s[p_mask]
            p = cols.p[p_mask]
            o = cols.o[p_mask]
            bucket_of = s % n_partitions
            parts = []
            for k in range(n_partitions):
                m = bucket_of == k
                if m.any():
                    parts.append(Partition(s[m], p[m], o[m]))
            self._tables[p_id] = parts

    def __len__(self) -> int:
        return self._size

    def predicates(self) -> set[int]:
        return set(self._tables)

    def scan(self) -> Iterator[Partition]:
        for parts in self._tables.values():
            yield from parts

    def scan_predicate(self, p_id: int) -> Iterator[Partition]:
        """Direct per-predicate access: VP's whole point."""
        yield from self._tables.get(p_id, [])


class PropertyTable:
    """Subject-grouped rows: one (sparse) row of properties per subject.

    The natural layout for the star-join queries of the experiment: a
    star over predicates p1..pk is a row-local operation, no join at all.
    Multi-valued properties keep their last value in the row and spill
    the rest to an overflow triples list (scanned only when the engine
    asks for exhaustive semantics).
    """

    name = "property_table"

    def __init__(self, triples: "Iterable[EncodedTriple] | TripleColumns", n_partitions: int = 4):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self._rows: dict[int, dict[int, int]] = {}
        self._overflow: list[EncodedTriple] = []
        self._size = 0
        if isinstance(triples, TripleColumns):
            triples = zip(triples.s.tolist(), triples.p.tolist(), triples.o.tolist())
        for s, p, o in triples:
            row = self._rows.setdefault(s, {})
            if p in row:
                self._overflow.append((s, p, row[p]))
            row[p] = o
            self._size += 1
        # Columnar star-scan view, built lazily: subjects in row-insertion
        # order plus one dense (present, object) column pair per predicate.
        self._subjects_arr: np.ndarray | None = None
        self._columns: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return self._size

    def subjects(self) -> Iterator[int]:
        return iter(self._rows)

    def row(self, s_id: int) -> dict[int, int] | None:
        return self._rows.get(s_id)

    def star_scan(self, predicate_ids: list[int]) -> Iterator[tuple[int, list[int]]]:
        """All (subject, [object per predicate]) rows having every predicate."""
        for s_id, row in self._rows.items():
            objs = []
            complete = True
            for p_id in predicate_ids:
                o = row.get(p_id)
                if o is None:
                    complete = False
                    break
                objs.append(o)
            if complete:
                yield s_id, objs

    def _column(self, p_id: int) -> tuple[np.ndarray, np.ndarray]:
        """The dense (present-mask, object) column of one predicate (cached)."""
        cached = self._columns.get(p_id)
        if cached is not None:
            return cached
        n = len(self._rows)
        present = np.zeros(n, dtype=bool)
        col = np.zeros(n, dtype=np.int64)
        for i, row in enumerate(self._rows.values()):
            o = row.get(p_id)
            if o is not None:
                present[i] = True
                col[i] = o
        self._columns[p_id] = (present, col)
        return present, col

    def star_scan_arrays(self, predicate_ids: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`star_scan`: (subjects, objects-matrix) arrays.

        Subjects come back in row-insertion order — the exact order
        :meth:`star_scan` yields — with one object column per requested
        predicate (shape ``(n_subjects, n_predicates)``).
        """
        if self._subjects_arr is None:
            self._subjects_arr = np.fromiter(self._rows.keys(), dtype=np.int64, count=len(self._rows))
        columns = [self._column(p_id) for p_id in predicate_ids]
        mask: np.ndarray | None = None
        for present, _ in columns:
            mask = present if mask is None else (mask & present)
        if mask is None:  # no predicates requested
            mask = np.ones(len(self._subjects_arr), dtype=bool)
        subjects = self._subjects_arr[mask]
        if columns:
            objs = np.stack([col[mask] for _, col in columns], axis=1)
        else:
            objs = np.empty((len(subjects), 0), dtype=np.int64)
        return subjects, objs

    def scan(self) -> Iterator[Partition]:
        rows: list[EncodedTriple] = [(s, p, o) for s, props in self._rows.items() for p, o in props.items()]
        rows.extend(self._overflow)
        yield _to_partition(rows)

    def scan_predicate(self, p_id: int) -> Iterator[Partition]:
        rows = [(s, p_id, props[p_id]) for s, props in self._rows.items() if p_id in props]
        rows.extend(t for t in self._overflow if t[1] == p_id)
        if rows:
            yield _to_partition(rows)


#: Layout registry by name.
LAYOUTS = {
    TriplesTable.name: TriplesTable,
    VerticalPartitioning.name: VerticalPartitioning,
    PropertyTable.name: PropertyTable,
}
