"""Dictionary encoding with embedded spatio-temporal cells (Section 4.2.5).

The store's "custom dictionary encoding technique": every RDF term is
mapped to a unique integer id (the dictionary itself is the REDIS
surrogate — an in-memory key-value map). For *spatio-temporal entities*
(semantic nodes carrying a position and a timestamp), the id embeds the
id of the spatio-temporal grid cell the entity falls in:

    id = (st_cell + 1) << SERIAL_BITS | serial

so that spatio-temporal range constraints can be evaluated **directly on
the encoded id** — no dictionary lookup, no geometry parsing — which is
what makes the pushdown query plans fast. Terms without a position get
st_cell slot 0 (i.e. "no cell").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import BBox, SpatioTemporalGrid
from ..rdf import Term

#: Bits reserved for the per-cell serial number.
SERIAL_BITS = 24
_SERIAL_MASK = (1 << SERIAL_BITS) - 1


class DictionaryFullError(RuntimeError):
    """Raised when a cell's serial space is exhausted."""


@dataclass(frozen=True, slots=True)
class STPosition:
    """The spatio-temporal anchor of an entity, if it has one."""

    lon: float
    lat: float
    t: float


class Dictionary:
    """Bidirectional term <-> integer-id dictionary with ST-aware ids."""

    def __init__(self, st_grid: SpatioTemporalGrid):
        self.st_grid = st_grid
        self._term_to_id: dict[Term, int] = {}
        self._id_to_term: dict[int, Term] = {}
        self._next_serial: dict[int, int] = {}   # st slot -> next serial

    def __len__(self) -> int:
        return len(self._term_to_id)

    def encode(self, term: Term, position: STPosition | None = None) -> int:
        """The id of a term, minting one (with its ST cell) on first sight."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        if position is None:
            slot = 0
        else:
            slot = self.st_grid.cell_id(position.lon, position.lat, position.t) + 1
        serial = self._next_serial.get(slot, 0)
        if serial > _SERIAL_MASK:
            raise DictionaryFullError(f"st slot {slot} exhausted its {_SERIAL_MASK + 1} serials")
        self._next_serial[slot] = serial + 1
        term_id = (slot << SERIAL_BITS) | serial
        self._term_to_id[term] = term_id
        self._id_to_term[term_id] = term
        return term_id

    def lookup(self, term: Term) -> int | None:
        """The id of a term if already encoded."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """The term behind an id."""
        try:
            return self._id_to_term[term_id]
        except KeyError:
            raise KeyError(f"unknown term id {term_id}") from None

    @staticmethod
    def st_slot_of(term_id: int) -> int:
        """The ST slot embedded in an id (0 = no spatio-temporal anchor)."""
        return term_id >> SERIAL_BITS

    def st_cell_of(self, term_id: int) -> int | None:
        """The spatio-temporal grid cell of an id, or None if unanchored."""
        slot = self.st_slot_of(term_id)
        return None if slot == 0 else slot - 1

    def ids_for_range(self, bbox: BBox, t_min: float, t_max: float) -> set[int]:
        """The set of ST *slots* covering a query range (for id filtering)."""
        return {cell + 1 for cell in self.st_grid.ids_for_range(bbox, t_min, t_max)}

    @staticmethod
    def id_matches_slots(term_id: int, slots: set[int]) -> bool:
        """Constraint check evaluated purely on the encoded id."""
        return (term_id >> SERIAL_BITS) in slots

    @staticmethod
    def slots_to_array(slots: set[int]) -> np.ndarray:
        """A slot set as a sorted int64 array, for vectorized matching."""
        return np.sort(np.fromiter(slots, dtype=np.int64, count=len(slots)))

    @staticmethod
    def ids_match_slots(term_ids: np.ndarray, slot_array: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`id_matches_slots`: one boolean per encoded id.

        ``slot_array`` must be sorted (see :meth:`slots_to_array`); matching
        is one shift plus one ``np.isin`` over the whole id column.
        """
        return np.isin(term_ids >> SERIAL_BITS, slot_array, assume_unique=False, kind="sort")
