"""Knowledge-graph store (S8): dictionary-encoded spatio-temporal RDF storage."""

from .encoding import Dictionary, DictionaryFullError, SERIAL_BITS, STPosition
from .layouts import LAYOUTS, Partition, PropertyTable, TriplesTable, VerticalPartitioning
from .parser import DEFAULT_PREFIXES, SPARQLSyntaxError, parse_star_query
from .sparql import STConstraint, StarQuery, star
from .store import KGStore, LoadReport, QueryMetrics

__all__ = [
    "DEFAULT_PREFIXES",
    "Dictionary",
    "DictionaryFullError",
    "KGStore",
    "LAYOUTS",
    "LoadReport",
    "Partition",
    "PropertyTable",
    "QueryMetrics",
    "SERIAL_BITS",
    "SPARQLSyntaxError",
    "STConstraint",
    "STPosition",
    "StarQuery",
    "TriplesTable",
    "VerticalPartitioning",
    "parse_star_query",
    "star",
]
