"""The knowledge-graph store: loading, planning and star-join execution.

Reproduces the E5 experiment (Section 4.2.5): the same star query with a
spatio-temporal constraint is executed through two physical plans —

* **post-filter** (the baseline a generic distributed RDF engine would
  use): evaluate the full star join, then enforce the spatio-temporal
  constraint on the materialized results, at the cost of computing a
  much larger candidate set; and
* **pushdown** (the paper's technique): prune candidate subjects by the
  spatio-temporal cell embedded in their *encoded integer ids* before
  any join work, refining exactly only the survivors.

The paper reports ~5x improvement for star joins with spatio-temporal
constraints; the bench measures the same ratio on this engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..geo import BBox, EquiGrid, SpatioTemporalGrid, parse_point
from ..rdf import Literal, Term, Triple, Variable, VOC

from .encoding import Dictionary, STPosition
from .layouts import LAYOUTS, PropertyTable, TripleColumns
from .sparql import STConstraint, StarQuery


@dataclass
class QueryMetrics:
    """What one query execution cost."""

    join_rows: int = 0          # rows entering the join pipeline
    candidates: int = 0         # candidate subjects after (any) pruning
    refined: int = 0            # subjects checked against the exact constraint
    results: int = 0
    wall_seconds: float = 0.0


@dataclass
class LoadReport:
    """What one :meth:`KGStore.load` call produced (batch-scoped counts).

    Store-wide totals live on the store itself (``len(store)`` and the
    ``kg.triples_stored`` / ``kg.anchored_subjects`` gauges), not here.
    """

    triples: int = 0            # triples in the batch just loaded
    subjects: int = 0           # distinct subjects in the batch just loaded
    anchored_subjects: int = 0  # batch subjects with a spatio-temporal position


class KGStore:
    """A partitioned, dictionary-encoded spatio-temporal triple store.

    With a ``registry`` attached (an ``repro.obs.MetricsRegistry``),
    loads and queries report under the ``kg.*`` namespace: load/query
    latency histograms plus counters for triples loaded, join rows
    scanned, candidate subjects, exact refinements and results — the
    numbers behind the paper's ~5x pushdown claim, observable live.
    """

    def __init__(
        self,
        bbox: BBox,
        t_origin: float,
        t_extent_s: float,
        layout: str = "property_table",
        grid_cols: int = 64,
        grid_rows: int = 64,
        t_slots: int = 64,
        n_partitions: int = 4,
        registry=None,
    ):
        if layout not in LAYOUTS:
            raise ValueError(f"unknown layout {layout!r}; pick one of {sorted(LAYOUTS)}")
        if t_extent_s <= 0:
            raise ValueError("t_extent_s must be positive")
        grid = EquiGrid(bbox, grid_cols, grid_rows)
        st_grid = SpatioTemporalGrid(grid, t_origin, t_extent_s / t_slots, t_slots)
        self.dictionary = Dictionary(st_grid)
        self.layout_name = layout
        self.n_partitions = n_partitions
        self.registry = registry
        self._layout = None
        self._positions: dict[int, STPosition] = {}   # subject id -> exact anchor
        #: The store's triples as growing numpy columns (the columnar truth).
        self._cols = TripleColumns.empty()
        # Anchors as parallel (id, lon, lat, t) arrays sorted by id, built
        # lazily for the vectorized refine step; invalidated on load.
        self._anchor_arrays_cache: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- loading ---------------------------------------------------------------

    def load(self, triples: Iterable[Triple]) -> LoadReport:
        """Encode and store a triple batch (rebuilds the layout)."""
        start = time.perf_counter()
        batch = list(triples)
        # Pass 1: find each subject's spatio-temporal anchor (asWKT + timestamp).
        wkt_by_subject: dict[Term, str] = {}
        t_by_subject: dict[Term, float] = {}
        for tr in batch:
            if tr.p == VOC.asWKT and isinstance(tr.o, Literal) and tr.o.value.lstrip().upper().startswith("POINT"):
                wkt_by_subject[tr.s] = tr.o.value
            elif tr.p == VOC.timestamp and isinstance(tr.o, Literal):
                try:
                    t_by_subject[tr.s] = float(tr.o.value)
                except ValueError:
                    # reprolint: disable=hygiene — a non-numeric timestamp
                    # literal simply fails to anchor this subject; the triple
                    # itself is still stored below.
                    pass
        anchors: dict[Term, STPosition] = {}
        for subject, wkt in wkt_by_subject.items():
            t = t_by_subject.get(subject)
            if t is None:
                continue
            point = parse_point(wkt)
            anchors[subject] = STPosition(point.lon, point.lat, t)

        # Pass 2: encode with anchored subject ids, into columnar batch buffers.
        report = LoadReport()
        seen_subjects: set[int] = set()
        anchored_subjects: set[int] = set()
        s_ids: list[int] = []
        p_ids: list[int] = []
        o_ids: list[int] = []
        for tr in batch:
            anchor = anchors.get(tr.s)
            s_id = self.dictionary.encode(tr.s, anchor)
            s_ids.append(s_id)
            p_ids.append(self.dictionary.encode(tr.p))
            o_ids.append(self.dictionary.encode(tr.o))
            seen_subjects.add(s_id)
            if anchor is not None:
                anchored_subjects.add(s_id)
                self._positions[s_id] = anchor
        report.triples = len(batch)
        report.subjects = len(seen_subjects)
        report.anchored_subjects = len(anchored_subjects)
        batch_cols = TripleColumns(
            np.asarray(s_ids, dtype=np.int64),
            np.asarray(p_ids, dtype=np.int64),
            np.asarray(o_ids, dtype=np.int64),
        )
        self._cols = self._cols.concat(batch_cols)
        self._anchor_arrays_cache = None
        self._layout = LAYOUTS[self.layout_name](self._cols, n_partitions=self.n_partitions)
        if self.registry is not None:
            self.registry.counter("kg.triples_loaded").inc(len(batch))
            self.registry.counter("kg.loads").inc()
            self.registry.histogram("kg.load_latency_s").observe(time.perf_counter() - start)
            self.registry.gauge("kg.triples_stored").set(len(self._cols))
            self.registry.gauge("kg.anchored_subjects").set(len(self._positions))
        return report

    def __len__(self) -> int:
        return len(self._cols)

    # -- query execution ---------------------------------------------------------

    def execute(
        self, query: StarQuery, pushdown: bool = True, vectorized: bool = True
    ) -> tuple[list[dict[str, Term]], QueryMetrics]:
        """Run a star query; returns (bindings, metrics).

        ``pushdown=False`` forces the baseline post-filter plan.
        ``vectorized=False`` forces the per-row scalar execution path; the
        default columnar path returns identical bindings (same order) and
        identical :class:`QueryMetrics` counters, enforced by the
        equivalence property tests.
        """
        if self._layout is None:
            raise RuntimeError("store is empty; call load() first")
        metrics = QueryMetrics()
        start = time.perf_counter()
        if vectorized:
            subjects, objects = self._star_rows_vectorized(query, metrics, pushdown)
            bindings = self._refine_and_project_vectorized(query, subjects, objects, metrics)
        else:
            rows = self._star_rows(query, metrics, pushdown)
            bindings = self._refine_and_project(query, rows, metrics, pushdown)
        metrics.wall_seconds = time.perf_counter() - start
        metrics.results = len(bindings)
        if self.registry is not None:
            plan = "pushdown" if pushdown else "postfilter"
            self.registry.counter("kg.queries").inc()
            self.registry.counter(f"kg.queries.{plan}").inc()
            self.registry.counter("kg.join_rows_scanned").inc(metrics.join_rows)
            self.registry.counter("kg.candidates").inc(metrics.candidates)
            self.registry.counter("kg.subjects_refined").inc(metrics.refined)
            self.registry.counter("kg.results").inc(metrics.results)
            self.registry.histogram(f"kg.query_latency_s.{plan}").observe(metrics.wall_seconds)
            self.registry.histogram("kg.query_latency_s").observe(metrics.wall_seconds)
        return bindings, metrics

    def _resolve_arms(self, query: StarQuery) -> list[tuple[int, int | None]] | None:
        """Encode the query's arms: (predicate id, fixed object id or None)."""
        arms: list[tuple[int, int | None]] = []
        for predicate, obj in query.arms:
            p_id = self.dictionary.lookup(predicate)
            if p_id is None:
                return None
            if isinstance(obj, Variable):
                arms.append((p_id, None))
            else:
                o_id = self.dictionary.lookup(obj)
                if o_id is None:
                    return None
                arms.append((p_id, o_id))
        return arms

    def _slots_for(self, st: STConstraint) -> set[int]:
        return self.dictionary.ids_for_range(st.bbox, st.t_min, st.t_max)

    def _star_rows(self, query: StarQuery, metrics: QueryMetrics, pushdown: bool) -> dict[int, list[int]]:
        """Candidate star rows: subject id -> object id per arm."""
        arms = self._resolve_arms(query)
        if arms is None:
            return {}
        slots = self._slots_for(query.st) if (pushdown and query.st is not None) else None

        if isinstance(self._layout, PropertyTable):
            rows: dict[int, list[int]] = {}
            predicate_ids = [p for p, _ in arms]
            for s_id, objs in self._layout.star_scan(predicate_ids):
                metrics.join_rows += 1
                if slots is not None and not Dictionary.id_matches_slots(s_id, slots):
                    continue
                if any(fixed is not None and objs[i] != fixed for i, (_, fixed) in enumerate(arms)):
                    continue
                rows[s_id] = objs
            metrics.candidates = len(rows)
            return rows

        # TriplesTable / VerticalPartitioning: cascade of hash semi-joins.
        rows = {}
        first = True
        for p_id, fixed in arms:
            arm_hits: dict[int, int] = {}
            for part in self._layout.scan_predicate(p_id):
                metrics.join_rows += len(part)
                for s_id, o_id in zip(part.s.tolist(), part.o.tolist()):
                    if slots is not None and not Dictionary.id_matches_slots(s_id, slots):
                        continue
                    if fixed is not None and o_id != fixed:
                        continue
                    if not first and s_id not in rows:
                        continue
                    arm_hits[s_id] = o_id
            if first:
                rows = {s: [o] for s, o in arm_hits.items()}
                first = False
            else:
                rows = {s: objs + [arm_hits[s]] for s, objs in rows.items() if s in arm_hits}
            if not rows:
                break
        metrics.candidates = len(rows)
        return rows

    def _star_rows_vectorized(
        self, query: StarQuery, metrics: QueryMetrics, pushdown: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar :meth:`_star_rows`: (subjects, objects-matrix) arrays.

        Slot pruning is one shift + ``np.isin`` over the whole subject
        column; fixed-object arms are equality masks. Candidate order and
        every :class:`QueryMetrics` counter match the scalar path exactly.
        """
        no_rows = (np.empty(0, dtype=np.int64), np.empty((0, len(query.arms)), dtype=np.int64))
        arms = self._resolve_arms(query)
        if arms is None:
            return no_rows
        slot_array = None
        if pushdown and query.st is not None:
            slot_array = Dictionary.slots_to_array(self._slots_for(query.st))

        if isinstance(self._layout, PropertyTable):
            subjects, objects = self._layout.star_scan_arrays([p for p, _ in arms])
            metrics.join_rows += len(subjects)
            keep = np.ones(len(subjects), dtype=bool)
            if slot_array is not None:
                keep &= Dictionary.ids_match_slots(subjects, slot_array)
            for i, (_, fixed) in enumerate(arms):
                if fixed is not None:
                    keep &= objects[:, i] == fixed
            subjects, objects = subjects[keep], objects[keep]
            metrics.candidates = len(subjects)
            return subjects, objects

        # TriplesTable / VerticalPartitioning: cascade of hash semi-joins,
        # with the per-partition slot/fixed filters vectorized so only the
        # survivors enter the Python-dict join.
        rows: dict[int, list[int]] = {}
        first = True
        for p_id, fixed in arms:
            arm_hits: dict[int, int] = {}
            for part in self._layout.scan_predicate(p_id):
                metrics.join_rows += len(part)
                s_col, o_col = part.s, part.o
                if slot_array is not None:
                    mask = Dictionary.ids_match_slots(s_col, slot_array)
                    s_col, o_col = s_col[mask], o_col[mask]
                if fixed is not None:
                    mask = o_col == fixed
                    s_col, o_col = s_col[mask], o_col[mask]
                arm_hits.update(zip(s_col.tolist(), o_col.tolist()))
            if first:
                rows = {s: [o] for s, o in arm_hits.items()}
                first = False
            else:
                rows = {s: objs + [arm_hits[s]] for s, objs in rows.items() if s in arm_hits}
            if not rows:
                break
        metrics.candidates = len(rows)
        if not rows:
            return no_rows
        subjects = np.fromiter(rows.keys(), dtype=np.int64, count=len(rows))
        objects = np.asarray(list(rows.values()), dtype=np.int64)
        return subjects, objects

    def _anchor_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Subject anchors as parallel (id, lon, lat, t) arrays sorted by id."""
        cached = self._anchor_arrays_cache
        if cached is None:
            n = len(self._positions)
            ids = np.fromiter(self._positions.keys(), dtype=np.int64, count=n)
            lons = np.fromiter((a.lon for a in self._positions.values()), dtype=np.float64, count=n)
            lats = np.fromiter((a.lat for a in self._positions.values()), dtype=np.float64, count=n)
            ts = np.fromiter((a.t for a in self._positions.values()), dtype=np.float64, count=n)
            order = np.argsort(ids)
            cached = (ids[order], lons[order], lats[order], ts[order])
            self._anchor_arrays_cache = cached
        return cached

    def _refine_and_project_vectorized(
        self,
        query: StarQuery,
        subjects: np.ndarray,
        objects: np.ndarray,
        metrics: QueryMetrics,
    ) -> list[dict[str, Term]]:
        """Columnar :meth:`_refine_and_project`: one bbox/time mask over the
        survivors' anchor arrays instead of a dict probe per row."""
        st = query.st
        if st is not None and len(subjects):
            metrics.refined += len(subjects)
            ids, lons, lats, ts = self._anchor_arrays()
            if len(ids):
                pos = np.searchsorted(ids, subjects).clip(max=len(ids) - 1)
                keep = ids[pos] == subjects
                lon, lat, t = lons[pos], lats[pos], ts[pos]
                bbox = st.bbox
                keep &= (t >= st.t_min) & (t <= st.t_max)
                keep &= (lon >= bbox.min_lon) & (lon <= bbox.max_lon)
                keep &= (lat >= bbox.min_lat) & (lat <= bbox.max_lat)
            else:
                keep = np.zeros(len(subjects), dtype=bool)
            subjects, objects = subjects[keep], objects[keep]
        elif st is not None:
            metrics.refined += len(subjects)
        bindings: list[dict[str, Term]] = []
        decode = self.dictionary.decode
        subject_name = query.subject.name
        arm_objs = query.arms
        for s_id, objs in zip(subjects.tolist(), objects.tolist()):
            binding: dict[str, Term] = {subject_name: decode(s_id)}
            ok = True
            for (_, obj), o_id in zip(arm_objs, objs):
                if isinstance(obj, Variable):
                    existing = binding.get(obj.name)
                    decoded = decode(o_id)
                    if existing is not None and existing != decoded:
                        ok = False
                        break
                    binding[obj.name] = decoded
            if ok:
                bindings.append(binding)
        return bindings

    def _refine_and_project(
        self,
        query: StarQuery,
        rows: dict[int, list[int]],
        metrics: QueryMetrics,
        pushdown: bool,
    ) -> list[dict[str, Term]]:
        bindings: list[dict[str, Term]] = []
        st = query.st
        for s_id, objs in rows.items():
            if st is not None:
                metrics.refined += 1
                anchor = self._positions.get(s_id)
                if anchor is None or not st.contains(anchor.lon, anchor.lat, anchor.t):
                    continue
            binding: dict[str, Term] = {query.subject.name: self.dictionary.decode(s_id)}
            ok = True
            for (predicate, obj), o_id in zip(query.arms, objs):
                if isinstance(obj, Variable):
                    existing = binding.get(obj.name)
                    decoded = self.dictionary.decode(o_id)
                    if existing is not None and existing != decoded:
                        ok = False
                        break
                    binding[obj.name] = decoded
            if ok:
                bindings.append(binding)
        return bindings

    # -- convenience --------------------------------------------------------------

    def compare_plans(self, query: StarQuery, repeat: int = 3) -> dict[str, float]:
        """Median wall time of both plans plus the speedup ratio."""
        def median_time(pushdown: bool) -> float:
            times = []
            for _ in range(repeat):
                _, metrics = self.execute(query, pushdown=pushdown)
                times.append(metrics.wall_seconds)
            times.sort()
            mid = len(times) // 2
            if len(times) % 2:
                return times[mid]
            # True median: even repeat counts average the two middle runs.
            return (times[mid - 1] + times[mid]) / 2.0

        baseline = median_time(False)
        pushed = median_time(True)
        return {
            "baseline_s": baseline,
            "pushdown_s": pushed,
            "speedup": baseline / pushed if pushed > 0 else float("inf"),
        }
